#include "obs/series.h"

#include <algorithm>

namespace tiamat::obs {

TimeSeriesRecorder::TimeSeriesRecorder(transport::TimerService& queue,
                                       SeriesOptions opts)
    : queue_(queue), opts_(opts) {
  if (opts_.interval <= 0) opts_.interval = transport::kMillisecond;
  if (opts_.capacity == 0) opts_.capacity = 1;
  if (opts_.rollup_width == 0) opts_.rollup_width = 1;
  if (opts_.rollup_capacity == 0) opts_.rollup_capacity = 1;
}

TimeSeriesRecorder::~TimeSeriesRecorder() { stop(); }

void TimeSeriesRecorder::add_source(std::string label, const Registry* registry,
                                    std::function<void()> refresh) {
  Source& s = source_of(label);
  s.registry = registry;
  s.refresh = std::move(refresh);
}

void TimeSeriesRecorder::add_probe(const std::string& label, Probe p) {
  ProbeState st;
  st.probe = std::move(p);
  source_of(label).probes.push_back(std::move(st));
}

TimeSeriesRecorder::Source& TimeSeriesRecorder::source_of(
    const std::string& label) {
  for (Source& s : sources_) {
    if (s.label == label) return s;
  }
  Source s;
  s.label = label;
  sources_.push_back(std::move(s));
  return sources_.back();
}

void TimeSeriesRecorder::start() {
  if (timer_ != transport::kInvalidEvent) return;
  timer_ = queue_.schedule_after(opts_.interval, [this] {
    timer_ = transport::kInvalidEvent;
    sample_now();
    start();
  });
}

void TimeSeriesRecorder::stop() {
  if (timer_ == transport::kInvalidEvent) return;
  queue_.cancel(timer_);
  timer_ = transport::kInvalidEvent;
}

void TimeSeriesRecorder::append(SeriesData& d, std::uint64_t index, double v) {
  d.points.push_back(Point{index, v});
  if (d.points.size() <= opts_.capacity) return;
  const Point old = d.points.front();
  d.points.pop_front();
  if (d.rollups.empty() || d.rollups.back().n >= opts_.rollup_width) {
    d.rollups.push_back(
        Rollup{old.index, old.index, old.value, old.value, old.value, 1});
    if (d.rollups.size() > opts_.rollup_capacity) {
      d.rollups.pop_front();
      ++d.dropped;
    }
    return;
  }
  Rollup& r = d.rollups.back();
  r.to = old.index;
  r.min = std::min(r.min, old.value);
  r.max = std::max(r.max, old.value);
  r.sum += old.value;
  ++r.n;
}

void TimeSeriesRecorder::sample_now() {
  const transport::Time at = queue_.now();
  const std::uint64_t index = samples_++;

  ticks_.emplace_back(index, at);
  if (ticks_.size() > opts_.capacity) {
    ticks_.pop_front();
    ++ticks_dropped_;
  }

  for (Source& src : sources_) {
    if (src.refresh) src.refresh();
    if (src.registry != nullptr) {
      src.registry->for_each_counter([&](const std::string& name,
                                         const Labels& labels,
                                         const Counter& c) {
        SeriesData& d = src.series[SeriesKey{"counter", name, labels}];
        d.integral = true;
        append(d, index, static_cast<double>(c.value()));
      });
      src.registry->for_each_gauge(
          [&](const std::string& name, const Labels& labels, const Gauge& g) {
            SeriesData& d = src.series[SeriesKey{"gauge", name, labels}];
            append(d, index, g.value());
          });
      src.registry->for_each_sketch([&](const std::string& name,
                                        const Labels& labels,
                                        const QuantileSketch& s) {
        // Windowed tail latency: the p99 of just this interval's samples,
        // recovered by subtracting last tick's snapshot.
        SeriesData& d = src.series[SeriesKey{"sketch_p99", name, labels}];
        const QuantileSketch window = s.delta_since(d.prev);
        d.prev = s;
        append(d, index, window.p99());
      });
    }
    for (ProbeState& st : src.probes) {
      const double v = st.probe.value ? st.probe.value() : 0.0;
      append(st.data, index, v);
      if (v >= st.probe.threshold) {
        ++st.breaches;
        ++breaches_;
        if (st.probe.on_breach) st.probe.on_breach(v, at);
        if (on_breach_) on_breach_(src.label, st.probe.name, v, at);
      }
    }
  }
}

json::Value TimeSeriesRecorder::series_json(const SeriesData& d) {
  json::Object o;
  json::Array points;
  for (const Point& p : d.points) {
    json::Array pair;
    pair.emplace_back(p.index);
    if (d.integral) {
      pair.emplace_back(static_cast<std::int64_t>(p.value));
    } else {
      pair.emplace_back(p.value);
    }
    points.emplace_back(std::move(pair));
  }
  o.emplace_back("points", json::Value(std::move(points)));
  if (!d.rollups.empty()) {
    json::Array rollups;
    for (const Rollup& r : d.rollups) {
      json::Array e;
      e.emplace_back(r.from);
      e.emplace_back(r.to);
      e.emplace_back(r.min);
      e.emplace_back(r.max);
      e.emplace_back(r.sum);
      e.emplace_back(r.n);
      rollups.emplace_back(std::move(e));
    }
    o.emplace_back("rollups", json::Value(std::move(rollups)));
  }
  if (d.dropped != 0) o.emplace_back("dropped", json::Value(d.dropped));
  return json::Value(std::move(o));
}

json::Value TimeSeriesRecorder::to_json() const {
  json::Object doc;
  doc.emplace_back("interval_us", json::Value(opts_.interval));
  doc.emplace_back("capacity",
                   json::Value(static_cast<std::int64_t>(opts_.capacity)));
  doc.emplace_back("rollup_width",
                   json::Value(static_cast<std::int64_t>(opts_.rollup_width)));
  doc.emplace_back("samples", json::Value(samples_));
  doc.emplace_back("breaches", json::Value(breaches_));

  json::Object ticks;
  json::Array tick_points;
  for (const auto& [index, at] : ticks_) {
    json::Array pair;
    pair.emplace_back(index);
    pair.emplace_back(at);
    tick_points.emplace_back(std::move(pair));
  }
  ticks.emplace_back("points", json::Value(std::move(tick_points)));
  if (ticks_dropped_ != 0) {
    ticks.emplace_back("dropped", json::Value(ticks_dropped_));
  }
  doc.emplace_back("ticks", json::Value(std::move(ticks)));

  json::Array sources;
  for (const Source& src : sources_) {
    json::Object s;
    s.emplace_back("source", json::Value(src.label));
    json::Array series;
    for (const auto& [key, data] : src.series) {
      json::Object e;
      e.emplace_back("kind", json::Value(std::get<0>(key)));
      e.emplace_back("name", json::Value(std::get<1>(key)));
      json::Object labels;
      for (const auto& [k, v] : std::get<2>(key)) {
        labels.emplace_back(k, json::Value(v));
      }
      e.emplace_back("labels", json::Value(std::move(labels)));
      json::Value body = series_json(data);
      for (auto& [k, v] : body.as_object()) {
        e.emplace_back(std::move(k), std::move(v));
      }
      series.emplace_back(std::move(e));
    }
    s.emplace_back("series", json::Value(std::move(series)));
    json::Array probes;
    for (const ProbeState& st : src.probes) {
      json::Object e;
      e.emplace_back("name", json::Value(st.probe.name));
      e.emplace_back("threshold", json::Value(st.probe.threshold));
      e.emplace_back("breaches", json::Value(st.breaches));
      json::Value body = series_json(st.data);
      for (auto& [k, v] : body.as_object()) {
        e.emplace_back(std::move(k), std::move(v));
      }
      probes.emplace_back(std::move(e));
    }
    s.emplace_back("probes", json::Value(std::move(probes)));
    sources.emplace_back(std::move(s));
  }
  doc.emplace_back("sources", json::Value(std::move(sources)));
  return json::Value(std::move(doc));
}

std::size_t TimeSeriesRecorder::max_series_points() const {
  std::size_t worst = ticks_.size();
  for (const Source& src : sources_) {
    for (const auto& [key, d] : src.series) {
      worst = std::max(worst, d.points.size() + d.rollups.size());
    }
    for (const ProbeState& st : src.probes) {
      worst = std::max(worst, st.data.points.size() + st.data.rollups.size());
    }
  }
  return worst;
}

}  // namespace tiamat::obs
