// Anti-tuples: the patterns handed to rd/rdp/in/inp.
//
// A pattern has the same arity as the tuples it matches; each field is
// either an *actual* (must equal the tuple's field), a *formal* (must only
// agree in type — classic Linda ?x), a wildcard, or one of two constrained
// formals (numeric range, string prefix) that the example applications use.

#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tiamat::tuples {

/// One position of an anti-tuple.
class Field {
 public:
  enum class Kind : std::uint8_t {
    kActual = 0,    ///< equals a concrete value
    kFormal = 1,    ///< any value of a given type
    kWildcard = 2,  ///< any value of any type
    kRange = 3,     ///< numeric (int/double) in [lo, hi]
    kPrefix = 4,    ///< string starting with a given prefix
  };

  /// Implicit from anything a Value is implicit from, so patterns read as
  /// naturally as tuples: Pattern{"resp", 42, Field::wildcard()}.
  Field(Value v) : kind_(Kind::kActual), value_(std::move(v)) {}  // NOLINT
  Field(int v) : Field(Value(v)) {}                               // NOLINT
  Field(std::int64_t v) : Field(Value(v)) {}                      // NOLINT
  Field(double v) : Field(Value(v)) {}                            // NOLINT
  Field(bool v) : Field(Value(v)) {}                              // NOLINT
  Field(const char* v) : Field(Value(v)) {}                       // NOLINT
  Field(std::string v) : Field(Value(std::move(v))) {}            // NOLINT

  static Field formal(Type t);
  static Field wildcard();
  static Field range(double lo, double hi);
  static Field prefix(std::string p);

  Kind kind() const { return kind_; }
  Type formal_type() const { return formal_type_; }
  const Value& actual() const { return value_; }
  double range_lo() const { return lo_; }
  double range_hi() const { return hi_; }
  const std::string& prefix_str() const { return value_.as_string(); }

  bool matches(const Value& v) const;

  std::string to_string() const;

  friend bool operator==(const Field& a, const Field& b);
  friend bool operator!=(const Field& a, const Field& b) { return !(a == b); }

 private:
  Field() = default;

  Kind kind_ = Kind::kWildcard;
  Value value_;                  // actual, or prefix string
  Type formal_type_ = Type::kInt;
  double lo_ = 0.0, hi_ = 0.0;
};

/// Shorthands so patterns stay terse at call sites.
inline Field any() { return Field::wildcard(); }
inline Field any_int() { return Field::formal(Type::kInt); }
inline Field any_double() { return Field::formal(Type::kDouble); }
inline Field any_bool() { return Field::formal(Type::kBool); }
inline Field any_string() { return Field::formal(Type::kString); }
inline Field any_blob() { return Field::formal(Type::kBlob); }

/// An anti-tuple. Matches a tuple iff arities agree and every field matches.
class Pattern {
 public:
  Pattern() = default;
  Pattern(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Pattern(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// A pattern that matches `t` exactly (every field an actual).
  static Pattern exactly(const Tuple& t);

  std::size_t arity() const { return fields_.size(); }
  const Field& at(std::size_t i) const { return fields_.at(i); }
  const std::vector<Field>& fields() const { return fields_; }

  bool matches(const Tuple& t) const;

  /// If the first field is an actual, returns it. Spaces index tuples by
  /// their first field; a "keyed" pattern probes the index instead of
  /// scanning.
  std::optional<Value> key() const;

  std::string to_string() const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Pattern& a, const Pattern& b) {
    return !(a == b);
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace tiamat::tuples
