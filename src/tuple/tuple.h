// The unit of communication: an ordered collection of typed values.

#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "tuple/value.h"

namespace tiamat::tuples {

/// An immutable-by-convention ordered collection of typed fields.
///
///   Tuple t{"req", 42, "http://example.org/"};
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<Value> fields) : fields_(fields) {}
  explicit Tuple(std::vector<Value> fields) : fields_(std::move(fields)) {}

  std::size_t arity() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  const Value& at(std::size_t i) const { return fields_.at(i); }
  const Value& operator[](std::size_t i) const { return fields_[i]; }

  const std::vector<Value>& fields() const { return fields_; }

  void push_back(Value v) { fields_.push_back(std::move(v)); }

  /// Approximate footprint in bytes (sum of field footprints + overhead);
  /// the unit the leasing subsystem charges storage budgets in.
  std::size_t footprint() const;

  std::string to_string() const;

  std::size_t hash() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.fields_ < b.fields_;
  }

  auto begin() const { return fields_.begin(); }
  auto end() const { return fields_.end(); }

 private:
  std::vector<Value> fields_;
};

struct TupleHash {
  std::size_t operator()(const Tuple& t) const { return t.hash(); }
};

}  // namespace tiamat::tuples
