#include "tuple/codec.h"

#include <cstring>

namespace tiamat::tuples {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void Writer::bytes(const std::uint8_t* data, std::size_t n) {
  out_.insert(out_.end(), data, data + n);
}

void Writer::str(const std::string& s) {
  varint(s.size());
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void Writer::blob(const Blob& b) {
  varint(b.size());
  bytes(b.data(), b.size());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return *data_++;
}

std::uint16_t Reader::u16() {
  std::uint16_t lo = u8();
  std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t Reader::u32() {
  std::uint32_t lo = u16();
  std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t Reader::u64() {
  std::uint64_t lo = u32();
  std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double Reader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t b = u8();
    if (shift >= 63 && (b & 0x7e) != 0) throw DecodeError("varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::string Reader::str() {
  std::uint64_t n = varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_), n);
  data_ += n;
  return s;
}

Blob Reader::blob() {
  std::uint64_t n = varint();
  need(n);
  Blob b(data_, data_ + n);
  data_ += n;
  return b;
}

void encode(Writer& w, const Value& v) {
  w.u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case Type::kInt:
      w.i64(v.as_int());
      break;
    case Type::kDouble:
      w.f64(v.as_double());
      break;
    case Type::kBool:
      w.u8(v.as_bool() ? 1 : 0);
      break;
    case Type::kString:
      w.str(v.as_string());
      break;
    case Type::kBlob:
      w.blob(v.as_blob());
      break;
  }
}

Value decode_value(Reader& r) {
  std::uint8_t tag = r.u8();
  switch (static_cast<Type>(tag)) {
    case Type::kInt:
      return Value(r.i64());
    case Type::kDouble:
      return Value(r.f64());
    case Type::kBool:
      return Value(r.u8() != 0);
    case Type::kString:
      return Value(r.str());
    case Type::kBlob:
      return Value(r.blob());
  }
  throw DecodeError("bad value tag");
}

void encode(Writer& w, const Tuple& t) {
  w.varint(t.arity());
  for (const Value& v : t) encode(w, v);
}

Tuple decode_tuple(Reader& r) {
  std::uint64_t n = r.varint();
  if (n > r.remaining()) throw DecodeError("tuple arity exceeds input");
  std::vector<Value> fields;
  fields.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) fields.push_back(decode_value(r));
  return Tuple(std::move(fields));
}

void encode(Writer& w, const Field& f) {
  w.u8(static_cast<std::uint8_t>(f.kind()));
  switch (f.kind()) {
    case Field::Kind::kActual:
      encode(w, f.actual());
      break;
    case Field::Kind::kFormal:
      w.u8(static_cast<std::uint8_t>(f.formal_type()));
      break;
    case Field::Kind::kWildcard:
      break;
    case Field::Kind::kRange:
      w.f64(f.range_lo());
      w.f64(f.range_hi());
      break;
    case Field::Kind::kPrefix:
      w.str(f.prefix_str());
      break;
  }
}

Field decode_field(Reader& r) {
  std::uint8_t tag = r.u8();
  switch (static_cast<Field::Kind>(tag)) {
    case Field::Kind::kActual:
      return Field(decode_value(r));
    case Field::Kind::kFormal: {
      std::uint8_t t = r.u8();
      if (t > static_cast<std::uint8_t>(Type::kBlob)) {
        throw DecodeError("bad formal type");
      }
      return Field::formal(static_cast<Type>(t));
    }
    case Field::Kind::kWildcard:
      return Field::wildcard();
    case Field::Kind::kRange: {
      double lo = r.f64();
      double hi = r.f64();
      return Field::range(lo, hi);
    }
    case Field::Kind::kPrefix:
      return Field::prefix(r.str());
  }
  throw DecodeError("bad field tag");
}

void encode(Writer& w, const Pattern& p) {
  w.varint(p.arity());
  for (const Field& f : p.fields()) encode(w, f);
}

Pattern decode_pattern(Reader& r) {
  std::uint64_t n = r.varint();
  if (n > r.remaining()) throw DecodeError("pattern arity exceeds input");
  std::vector<Field> fields;
  fields.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) fields.push_back(decode_field(r));
  return Pattern(std::move(fields));
}

Bytes encode_tuple(const Tuple& t) {
  Writer w;
  encode(w, t);
  return std::move(w).take();
}

Bytes encode_pattern(const Pattern& p) {
  Writer w;
  encode(w, p);
  return std::move(w).take();
}

std::optional<Tuple> try_decode_tuple(const Bytes& b) {
  try {
    Reader r(b);
    Tuple t = decode_tuple(r);
    if (!r.done()) return std::nullopt;
    return t;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::optional<Pattern> try_decode_pattern(const Bytes& b) {
  try {
    Reader r(b);
    Pattern p = decode_pattern(r);
    if (!r.done()) return std::nullopt;
    return p;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace tiamat::tuples
