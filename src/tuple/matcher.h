// The matching engine's compiled-pattern layer.
//
// Tuple matching is the hot path of every Linda operation, and before this
// engine existed it was implemented four different ways (ordered-map index
// buckets, linear waiter lists, per-baseline replica scans, field-by-field
// Pattern::matches with no precomputation). Everything now funnels through
// two shared pieces:
//
//   CompiledPattern — a pattern with its match plan precomputed: arity,
//     leading-actual key (and that key's hash), a field-kind signature, and
//     the list of field positions that actually need checking (wildcards are
//     dropped at compile time). Candidacy is rejected on arity/signature
//     without walking fields; bucket probes skip re-checking the key field.
//
//   MatchStats — the engine's probe/scan accounting, shared by TupleIndex
//     and WaiterIndex. Raw counters are always maintained (cheap integer
//     adds); bind_metrics() additionally mirrors them into an obs::Registry
//     so BENCH_*.json and instance snapshots expose bucket-probe vs
//     full-scan-fallback ratios and a candidate-rejection histogram.

#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"

namespace tiamat::tuples {

/// A Pattern plus its precomputed match plan. Cheap to copy relative to the
/// pattern it wraps (one extra small vector); built once per operation or
/// per registered waiter, then reused against every candidate tuple.
class CompiledPattern {
 public:
  CompiledPattern() = default;
  explicit CompiledPattern(Pattern p);

  const Pattern& pattern() const { return pattern_; }
  std::size_t arity() const { return pattern_.fields().size(); }

  /// True when the first field is an actual: the pattern probes the
  /// (arity, first-field) bucket instead of scanning.
  bool keyed() const { return keyed_; }
  /// The leading actual. Only meaningful when keyed().
  const Value& key() const { return pattern_.fields()[0].actual(); }
  /// Precomputed hash of key(); saves rehashing on every bucket probe.
  std::size_t key_hash() const { return key_hash_; }

  /// 3 bits of Field::Kind per field (fields past 20 are not encoded).
  /// Two patterns with different signatures can never have identical match
  /// plans; used for cheap pattern comparison and engine diagnostics.
  std::uint64_t kind_signature() const { return signature_; }

  /// True when every field is a wildcard: any tuple of the right arity
  /// matches, so the engine can skip per-field checks entirely.
  bool match_all() const { return checks_.empty(); }

  /// Full match: arity gate, then only the precompiled non-wildcard checks.
  bool matches(const Tuple& t) const {
    if (t.arity() != arity()) return false;
    for (std::uint32_t i : checks_) {
      if (!pattern_.fields()[i].matches(t[i])) return false;
    }
    return true;
  }

  /// Match for bucket-probe candidates: the caller guarantees arity and
  /// first-field equality (that is what the bucket key means), so the key
  /// field's equality check is skipped.
  bool matches_rest(const Tuple& t) const {
    for (std::uint32_t i : checks_) {
      if (i == 0 && keyed_) continue;
      if (!pattern_.fields()[i].matches(t[i])) return false;
    }
    return true;
  }

 private:
  Pattern pattern_;
  std::vector<std::uint32_t> checks_;  ///< non-wildcard field positions
  std::uint64_t signature_ = 0;
  std::size_t key_hash_ = 0;
  bool keyed_ = false;
};

/// Probe/scan accounting shared by TupleIndex and WaiterIndex. The raw
/// fields are the source of truth (tests and benches read them directly);
/// when bound to a registry the same numbers are mirrored into named
/// instruments so they appear in JSON snapshots.
struct MatchStats {
  std::uint64_t bucket_probes = 0;    ///< keyed lookups: one bucket visited
  std::uint64_t scan_fallbacks = 0;   ///< unkeyed lookups: whole shard walked
  std::uint64_t candidates = 0;       ///< tuples/waiters examined
  std::uint64_t rejected = 0;         ///< examined but failed to match

  void reset() { *this = MatchStats{}; }
};

/// Mirrors a MatchStats stream into registry instruments. `prefix` is the
/// metric namespace ("match" for tuple storage, "waiters" for the waiter
/// index). Null until bind(); every hook tolerates the unbound state.
class MatchMetrics {
 public:
  void bind(obs::Registry& r, const std::string& prefix) {
    probes_ = &r.counter(prefix + ".bucket_probes");
    scans_ = &r.counter(prefix + ".scan_fallbacks");
    candidates_ = &r.counter(prefix + ".candidates");
    rejected_ = &r.counter(prefix + ".rejected");
    // Rejections per lookup: 0..64 in powers of two, overflow above.
    rejected_per_op_ = &r.histogram(
        prefix + ".rejected_per_lookup", {},
        std::vector<double>{0, 1, 2, 4, 8, 16, 32, 64});
  }

  bool bound() const { return probes_ != nullptr; }

  void on_probe() const {
    if (probes_ != nullptr) probes_->add();
  }
  void on_scan() const {
    if (scans_ != nullptr) scans_->add();
  }
  void on_lookup_done(std::uint64_t examined, std::uint64_t rejected) const {
    if (candidates_ != nullptr) candidates_->add(examined);
    if (rejected_ != nullptr) rejected_->add(rejected);
    if (rejected_per_op_ != nullptr) {
      rejected_per_op_->observe(static_cast<double>(rejected));
    }
  }

 private:
  obs::Counter* probes_ = nullptr;
  obs::Counter* scans_ = nullptr;
  obs::Counter* candidates_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Histogram* rejected_per_op_ = nullptr;
};

}  // namespace tiamat::tuples
