// The waiter half of the matching engine: blocked rd/in registrations
// indexed the same way tuples are, so a newly visible tuple probes one
// bucket instead of scanning every blocked waiter.
//
// Keyed waiter patterns (leading actual) live in an (arity, first-field)
// hash bucket; unkeyed patterns go to a single overflow bucket that every
// insert must still consult. Waiter ids are caller-allocated and strictly
// increasing, so "ascending id" is exactly registration order — candidate
// lists are produced in FIFO order ("oldest waiter wins") by merging two
// sorted vectors.
//
// The index deliberately does not invoke callbacks itself: offer paths are
// re-entrant (a satisfied waiter's callback may immediately issue the next
// operation), so callers collect candidates first, extract the winners, and
// only then fire callbacks — the same discipline the pre-engine linear
// lists used.

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tuple/matcher.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tiamat::tuples {

template <typename W>
class WaiterIndex {
 public:
  struct Extracted {
    CompiledPattern pattern;
    W payload;
  };

  /// Registers a waiter. `id` must be non-zero, unique, and greater than
  /// every id added before it (FIFO order == ascending id).
  void add(std::uint64_t id, CompiledPattern p, W payload) {
    if (p.keyed()) {
      buckets_[p.arity()][p.key()].push_back(id);
    } else {
      overflow_.push_back(id);
    }
    entries_.emplace(id, Entry{std::move(p), std::move(payload)});
  }

  /// Removes a waiter and hands back its pattern + payload.
  std::optional<Extracted> extract(std::uint64_t id) {
    auto it = entries_.find(id);
    if (it == entries_.end()) return std::nullopt;
    Extracted out{std::move(it->second.pattern), std::move(it->second.payload)};
    unindex(id, out.pattern);
    entries_.erase(it);
    return out;
  }

  bool contains(std::uint64_t id) const { return entries_.count(id) != 0; }

  W* payload(std::uint64_t id) {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second.payload;
  }

  const CompiledPattern* pattern_of(std::uint64_t id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second.pattern;
  }

  /// Ids of waiters whose bucket covers `t`, oldest first: the keyed
  /// (arity, first-field) bucket merged with the unkeyed overflow (filtered
  /// to the tuple's arity). Candidacy, not a full match — the caller still
  /// applies pattern_of(id)->matches(t) (or matches_rest for keyed ones);
  /// the index only guarantees no waiter outside the list can match.
  std::vector<std::uint64_t> candidates(const Tuple& t) const {
    std::uint64_t examined = 0;
    std::uint64_t skipped = 0;
    std::vector<std::uint64_t> keyed;
    if (t.arity() > 0) {
      auto ait = buckets_.find(t.arity());
      if (ait != buckets_.end()) {
        auto bit = ait->second.find(t[0]);
        if (bit != ait->second.end()) keyed = bit->second;
      }
    }
    ++stats_.bucket_probes;
    metrics_.on_probe();

    std::vector<std::uint64_t> out;
    out.reserve(keyed.size() + overflow_.size());
    auto kit = keyed.begin();
    for (std::uint64_t oid : overflow_) {
      const Entry& e = entries_.find(oid)->second;
      ++examined;
      if (e.pattern.arity() != t.arity()) {
        ++skipped;
        continue;  // wrong arity can never match
      }
      while (kit != keyed.end() && *kit < oid) out.push_back(*kit++);
      out.push_back(oid);
    }
    out.insert(out.end(), kit, keyed.end());
    examined += keyed.size();
    stats_.candidates += examined;
    stats_.rejected += skipped;
    metrics_.on_lookup_done(examined, skipped);
    return out;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t overflow_size() const { return overflow_.size(); }

  /// Visits every waiter oldest-first (tests / teardown).
  template <typename Fn>  // Fn: (std::uint64_t id, W& payload)
  void for_each(Fn&& fn) {
    for (auto& [id, e] : entries_) fn(id, e.payload);
  }

  const MatchStats& match_stats() const { return stats_; }
  void reset_match_stats() { stats_.reset(); }
  void bind_metrics(obs::Registry& r) { metrics_.bind(r, "waiters"); }

 private:
  struct Entry {
    CompiledPattern pattern;
    W payload;
  };

  void unindex(std::uint64_t id, const CompiledPattern& p) {
    auto drop = [id](std::vector<std::uint64_t>& v) {
      auto it = std::lower_bound(v.begin(), v.end(), id);
      if (it != v.end() && *it == id) v.erase(it);
    };
    if (p.keyed()) {
      auto ait = buckets_.find(p.arity());
      if (ait == buckets_.end()) return;
      auto bit = ait->second.find(p.key());
      if (bit == ait->second.end()) return;
      drop(bit->second);
      if (bit->second.empty()) ait->second.erase(bit);
      if (ait->second.empty()) buckets_.erase(ait);
    } else {
      drop(overflow_);
    }
  }

  // id -> entry; std::map keeps oldest-first iteration for for_each.
  std::map<std::uint64_t, Entry> entries_;
  // arity -> first-field value -> ascending waiter ids (keyed patterns).
  std::unordered_map<std::size_t,
                     std::unordered_map<Value, std::vector<std::uint64_t>,
                                        ValueHash>>
      buckets_;
  std::vector<std::uint64_t> overflow_;  ///< ascending ids, unkeyed patterns
  mutable MatchStats stats_;
  MatchMetrics metrics_;
};

}  // namespace tiamat::tuples
