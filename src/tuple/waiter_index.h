// The waiter half of the matching engine: blocked rd/in registrations
// indexed the same way tuples are, so a newly visible tuple probes one
// bucket instead of scanning every blocked waiter.
//
// Keyed waiter patterns (leading actual) live in an (arity, first-field)
// hash bucket; unkeyed patterns go to a single overflow bucket that every
// insert must still consult. Waiter ids are caller-allocated and strictly
// increasing, so "ascending id" is exactly registration order — candidate
// lists are produced in FIFO order ("oldest waiter wins") by merging two
// sorted vectors.
//
// The index deliberately does not invoke callbacks itself: offer paths are
// re-entrant (a satisfied waiter's callback may immediately issue the next
// operation), so callers collect candidates first, extract the winners, and
// only then fire callbacks — the same discipline the pre-engine linear
// lists used.

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "tuple/matcher.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

#if TIAMAT_AUDIT_ENABLED
#include <sstream>
#endif

namespace tiamat::tuples {

template <typename W>
class WaiterIndex {
 public:
  struct Extracted {
    CompiledPattern pattern;
    W payload;
  };

  /// Registers a waiter. `id` must be non-zero, unique, and greater than
  /// every id added before it (FIFO order == ascending id).
  void add(std::uint64_t id, CompiledPattern p, W payload) {
    if (p.keyed()) {
      buckets_[p.arity()][p.key()].push_back(id);
    } else {
      overflow_.push_back(id);
    }
    entries_.emplace(id, Entry{std::move(p), std::move(payload)});
  }

  /// Removes a waiter and hands back its pattern + payload.
  std::optional<Extracted> extract(std::uint64_t id) {
    auto it = entries_.find(id);
    if (it == entries_.end()) return std::nullopt;
    Extracted out{std::move(it->second.pattern), std::move(it->second.payload)};
    unindex(id, out.pattern);
    entries_.erase(it);
    return out;
  }

  bool contains(std::uint64_t id) const { return entries_.contains(id); }

  W* payload(std::uint64_t id) {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second.payload;
  }

  const CompiledPattern* pattern_of(std::uint64_t id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second.pattern;
  }

  /// Ids of waiters whose bucket covers `t`, oldest first: the keyed
  /// (arity, first-field) bucket merged with the unkeyed overflow (filtered
  /// to the tuple's arity). Candidacy, not a full match — the caller still
  /// applies pattern_of(id)->matches(t) (or matches_rest for keyed ones);
  /// the index only guarantees no waiter outside the list can match.
  std::vector<std::uint64_t> candidates(const Tuple& t) const {
    std::uint64_t examined = 0;
    std::uint64_t skipped = 0;
    std::vector<std::uint64_t> keyed;
    if (t.arity() > 0) {
      auto ait = buckets_.find(t.arity());
      if (ait != buckets_.end()) {
        auto bit = ait->second.find(t[0]);
        if (bit != ait->second.end()) keyed = bit->second;
      }
    }
    ++stats_.bucket_probes;
    metrics_.on_probe();

    std::vector<std::uint64_t> out;
    out.reserve(keyed.size() + overflow_.size());
    auto kit = keyed.begin();
    for (std::uint64_t oid : overflow_) {
      const Entry& e = entries_.find(oid)->second;
      ++examined;
      if (e.pattern.arity() != t.arity()) {
        ++skipped;
        continue;  // wrong arity can never match
      }
      while (kit != keyed.end() && *kit < oid) out.push_back(*kit++);
      out.push_back(oid);
    }
    out.insert(out.end(), kit, keyed.end());
    examined += keyed.size();
    stats_.candidates += examined;
    stats_.rejected += skipped;
    metrics_.on_lookup_done(examined, skipped);
    return out;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t overflow_size() const { return overflow_.size(); }

  /// Approximate resident bytes: inline entry size plus a fixed per-entry
  /// estimate of map-node and bucket overhead. A deterministic formula over
  /// entry counts (see TupleIndex::approx_bytes) sampled into gauges by the
  /// telemetry layer.
  std::size_t approx_bytes() const {
    return entries_.size() * (sizeof(Entry) + kApproxEntryOverhead) +
           overflow_.size() * sizeof(std::uint64_t);
  }
  static constexpr std::size_t kApproxEntryOverhead = 56;

  /// Visits every waiter oldest-first (tests / teardown).
  template <typename Fn>  // Fn: (std::uint64_t id, W& payload)
  void for_each(Fn&& fn) {
    for (auto& [id, e] : entries_) fn(id, e.payload);
  }

  const MatchStats& match_stats() const { return stats_; }
  void reset_match_stats() { stats_.reset(); }
  void bind_metrics(obs::Registry& r) { metrics_.bind(r, "waiters"); }

#if TIAMAT_AUDIT_ENABLED
  /// Full structural re-verification (audit builds only): every waiter in
  /// exactly one keyed bucket or the overflow per its pattern's keyed();
  /// all id vectors strictly ascending, so the two-way candidates() merge
  /// stays FIFO-monotonic; precomputed key hashes consistent. Traps
  /// through audit::fail on violation.
  void audit_check(const char* checkpoint) const {
    auto trap = [&](const std::string& invariant, const std::string& detail) {
      std::ostringstream os;
      os << detail << " | waiters " << entries_.size() << ", overflow "
         << overflow_.size();
      audit::fail("WaiterIndex", checkpoint, invariant, os.str());
    };
    auto ascending = [](const std::vector<std::uint64_t>& v) {
      return std::adjacent_find(v.begin(), v.end(),
                                std::greater_equal<std::uint64_t>()) ==
             v.end();
    };
    auto member = [](const std::vector<std::uint64_t>& v, std::uint64_t id) {
      return std::binary_search(v.begin(), v.end(), id);
    };

    // Ordering first: the membership checks below binary-search these
    // vectors, so an unsorted list must trap as itself rather than as a
    // bogus membership miss.
    if (!ascending(overflow_)) {
      trap("fifo-monotonic", "overflow id list not strictly ascending");
      return;
    }
    for (const auto& [arity, by_key] : buckets_) {
      for (const auto& [key, ids] : by_key) {
        if (ids.empty()) {
          trap("bucket-pruning",
               "empty bucket key=" + key.to_string() + " not pruned");
          return;
        }
        if (!ascending(ids)) {
          std::ostringstream os;
          os << "bucket key=" << key.to_string() << " arity " << arity
             << " id list not strictly ascending";
          trap("fifo-monotonic", os.str());
          return;
        }
      }
    }

    for (const auto& [id, e] : entries_) {
      const CompiledPattern& p = e.pattern;
      if (p.keyed()) {
        if (ValueHash{}(p.key()) != p.key_hash()) {
          std::ostringstream os;
          os << "waiter id " << id << " precomputed key hash is stale";
          trap("key-hash", os.str());
          return;
        }
        bool indexed_here = false;
        auto ait = buckets_.find(p.arity());
        if (ait != buckets_.end()) {
          auto bit = ait->second.find(p.key());
          if (bit != ait->second.end()) indexed_here = member(bit->second, id);
        }
        if (!indexed_here) {
          std::ostringstream os;
          os << "keyed waiter id " << id << " missing from bucket key="
             << p.key().to_string() << " arity " << p.arity();
          trap("bucket-membership", os.str());
          return;
        }
      } else if (!member(overflow_, id)) {
        std::ostringstream os;
        os << "unkeyed waiter id " << id << " missing from overflow";
        trap("bucket-membership", os.str());
        return;
      }
    }

    std::size_t indexed = overflow_.size();
    for (std::uint64_t id : overflow_) {
      auto it = entries_.find(id);
      if (it == entries_.end() || it->second.pattern.keyed()) {
        std::ostringstream os;
        os << "overflow lists id " << id
           << (it == entries_.end() ? " which is not registered"
                                    : " whose pattern is keyed");
        trap("bucket-membership", os.str());
        return;
      }
    }
    for (const auto& [arity, by_key] : buckets_) {
      for (const auto& [key, ids] : by_key) {
        indexed += ids.size();
        for (std::uint64_t id : ids) {
          auto it = entries_.find(id);
          if (it == entries_.end() || !it->second.pattern.keyed() ||
              it->second.pattern.arity() != arity ||
              !(it->second.pattern.key() == key)) {
            std::ostringstream os;
            os << "bucket key=" << key.to_string() << " arity " << arity
               << " lists id " << id << " which does not belong there";
            trap("bucket-membership", os.str());
            return;
          }
        }
      }
    }
    if (indexed != entries_.size()) {
      std::ostringstream os;
      os << "bucket/overflow lists hold " << indexed << " ids for "
         << entries_.size() << " registered waiters";
      trap("membership-count", os.str());
    }
  }

  /// Test hook: swaps the first two ids of the overflow (or, failing that,
  /// of the first keyed bucket), breaking FIFO monotonicity for the
  /// corruption-trap tests.
  void audit_corrupt_fifo_for_test() {
    if (overflow_.size() >= 2) {
      std::swap(overflow_[0], overflow_[1]);
      return;
    }
    for (auto& [arity, by_key] : buckets_) {
      (void)arity;
      for (auto& [key, ids] : by_key) {
        (void)key;
        if (ids.size() >= 2) {
          std::swap(ids[0], ids[1]);
          return;
        }
      }
    }
  }
#endif

 private:
  struct Entry {
    CompiledPattern pattern;
    W payload;
  };

  void unindex(std::uint64_t id, const CompiledPattern& p) {
    auto drop = [id](std::vector<std::uint64_t>& v) {
      auto it = std::lower_bound(v.begin(), v.end(), id);
      if (it != v.end() && *it == id) v.erase(it);
    };
    if (p.keyed()) {
      auto ait = buckets_.find(p.arity());
      if (ait == buckets_.end()) return;
      auto bit = ait->second.find(p.key());
      if (bit == ait->second.end()) return;
      drop(bit->second);
      if (bit->second.empty()) ait->second.erase(bit);
      if (ait->second.empty()) buckets_.erase(ait);
    } else {
      drop(overflow_);
    }
  }

  // id -> entry; std::map keeps oldest-first iteration for for_each.
  std::map<std::uint64_t, Entry> entries_;
  // arity -> first-field value -> ascending waiter ids (keyed patterns).
  std::unordered_map<std::size_t,
                     std::unordered_map<Value, std::vector<std::uint64_t>,
                                        ValueHash>>
      buckets_;
  std::vector<std::uint64_t> overflow_;  ///< ascending ids, unkeyed patterns
  mutable MatchStats stats_;
  MatchMetrics metrics_;
};

}  // namespace tiamat::tuples
