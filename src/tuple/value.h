// Typed field values for tuples.
//
// Linda tuples are ordered collections of typed data (paper §1). Tiamat's
// C++ incarnation supports the scalar types the paper's applications need
// (identifiers, URLs, fractal parameters, page bodies) plus a raw-bytes blob.

#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace tiamat::tuples {

/// Discriminates the alternatives of Value. Order matches the variant.
enum class Type : std::uint8_t {
  kInt = 0,
  kDouble = 1,
  kBool = 2,
  kString = 3,
  kBlob = 4,
};

const char* type_name(Type t);

using Blob = std::vector<std::uint8_t>;

/// A single typed field. Regular value type: copyable, comparable, hashable.
class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t v) : v_(v) {}          // NOLINT: implicit by design —
  Value(int v) : v_(std::int64_t{v}) {}     // tuple literals read naturally
  Value(double v) : v_(v) {}                // NOLINT
  Value(bool v) : v_(v) {}                  // NOLINT
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT
  Value(Blob v) : v_(std::move(v)) {}       // NOLINT

  Type type() const { return static_cast<Type>(v_.index()); }

  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_string() const { return type() == Type::kString; }
  bool is_blob() const { return type() == Type::kBlob; }

  /// Accessors throw std::bad_variant_access on type mismatch.
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  bool as_bool() const { return std::get<bool>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Blob& as_blob() const { return std::get<Blob>(v_); }

  /// Approximate in-memory/wire footprint in bytes; the lease subsystem
  /// charges storage budgets with this.
  std::size_t footprint() const;

  std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Total order (by type index, then value); used for deterministic sorts.
  friend bool operator<(const Value& a, const Value& b) { return a.v_ < b.v_; }

  std::size_t hash() const;

 private:
  std::variant<std::int64_t, double, bool, std::string, Blob> v_;
};

/// Hash functor for unordered containers keyed by Value (the matching
/// engine's first-field buckets).
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

}  // namespace tiamat::tuples
