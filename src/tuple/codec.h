// Binary wire codec for values, tuples and patterns.
//
// Everything that crosses the simulated network is really encoded and
// decoded through this codec (not passed by pointer), so byte counts in the
// benches are honest and corruption/compatibility bugs are caught by tests.
//
// Format: little-endian fixed-width scalars, LEB128 varints for lengths,
// one tag byte per value/field.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "tuple/pattern.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tiamat::tuples {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by Reader / decode_* on malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void varint(std::uint64_t v);
  void bytes(const std::uint8_t* data, std::size_t n);
  void str(const std::string& s);  ///< varint length + raw bytes
  void blob(const Blob& b);        ///< varint length + raw bytes

  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

/// Bounds-checked byte source.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : data_(data), end_(data + n) {}
  explicit Reader(const Bytes& b) : Reader(b.data(), b.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::uint64_t varint();
  std::string str();
  Blob blob();

  bool done() const { return data_ == end_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - data_); }

 private:
  void need(std::size_t n) const;
  const std::uint8_t* data_;
  const std::uint8_t* end_;
};

void encode(Writer& w, const Value& v);
void encode(Writer& w, const Tuple& t);
void encode(Writer& w, const Field& f);
void encode(Writer& w, const Pattern& p);

Value decode_value(Reader& r);
Tuple decode_tuple(Reader& r);
Field decode_field(Reader& r);
Pattern decode_pattern(Reader& r);

Bytes encode_tuple(const Tuple& t);
Bytes encode_pattern(const Pattern& p);
std::optional<Tuple> try_decode_tuple(const Bytes& b);
std::optional<Pattern> try_decode_pattern(const Bytes& b);

}  // namespace tiamat::tuples
