#include "tuple/index.h"

#include <algorithm>

namespace tiamat::tuples {

namespace {

/// Inserts `id` keeping `v` sorted ascending. Ids are allocated
/// monotonically, so the common case is a pure push_back; out-of-order
/// inserts (tentative releases putting an old id back) binary-search.
void sorted_insert(std::vector<TupleId>& v, TupleId id) {
  if (v.empty() || v.back() < id) {
    v.push_back(id);
    return;
  }
  v.insert(std::lower_bound(v.begin(), v.end(), id), id);
}

void sorted_erase(std::vector<TupleId>& v, TupleId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

}  // namespace

void TupleIndex::insert(TupleId id, Tuple t) {
  footprint_ += t.footprint();
  Shard& shard = shards_[t.arity()];
  sorted_insert(shard.ids, id);
  if (t.arity() > 0) sorted_insert(shard.buckets[t[0]], id);
  by_id_.emplace(id, std::move(t));
}

std::optional<Tuple> TupleIndex::erase(TupleId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  Tuple t = std::move(it->second);
  by_id_.erase(it);
  footprint_ -= t.footprint();
  auto sit = shards_.find(t.arity());
  if (sit != shards_.end()) {
    Shard& shard = sit->second;
    sorted_erase(shard.ids, id);
    if (t.arity() > 0) {
      auto bit = shard.buckets.find(t[0]);
      if (bit != shard.buckets.end()) {
        sorted_erase(bit->second, id);
        if (bit->second.empty()) shard.buckets.erase(bit);
      }
    }
    if (shard.ids.empty()) shards_.erase(sit);
  }
  return t;
}

const Tuple* TupleIndex::get(TupleId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::vector<TupleId> TupleIndex::find_matches(const CompiledPattern& p,
                                              std::size_t limit) const {
  std::vector<TupleId> out;
  lookup(p, [&](TupleId id, const Tuple&) {
    out.push_back(id);
    return limit == 0 || out.size() < limit;
  });
  return out;
}

std::vector<TupleId> TupleIndex::find_matches(const Pattern& p,
                                              std::size_t limit) const {
  return find_matches(CompiledPattern(p), limit);
}

std::optional<TupleId> TupleIndex::find_first(const CompiledPattern& p) const {
  std::optional<TupleId> found;
  lookup(p, [&](TupleId id, const Tuple&) {
    found = id;
    return false;  // short-circuit after the first match
  });
  return found;
}

std::optional<TupleId> TupleIndex::find_first(const Pattern& p) const {
  return find_first(CompiledPattern(p));
}

std::size_t TupleIndex::count_matches(const CompiledPattern& p) const {
  std::size_t n = 0;
  lookup(p, [&](TupleId, const Tuple&) {
    ++n;
    return true;
  });
  return n;
}

std::size_t TupleIndex::count_matches(const Pattern& p) const {
  return count_matches(CompiledPattern(p));
}

void TupleIndex::for_each(
    const std::function<void(TupleId, const Tuple&)>& fn) const {
  for (const auto& [id, t] : by_id_) fn(id, t);
}

}  // namespace tiamat::tuples
