#include "tuple/index.h"

namespace tiamat::tuples {

void TupleIndex::insert(TupleId id, Tuple t) {
  footprint_ += t.footprint();
  if (t.arity() == 0) {
    nullary_.insert(id);
  } else {
    buckets_[t.arity()][t[0]].insert(id);
  }
  by_id_.emplace(id, std::move(t));
}

std::optional<Tuple> TupleIndex::erase(TupleId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  Tuple t = std::move(it->second);
  by_id_.erase(it);
  footprint_ -= t.footprint();
  if (t.arity() == 0) {
    nullary_.erase(id);
  } else {
    auto ait = buckets_.find(t.arity());
    if (ait != buckets_.end()) {
      auto vit = ait->second.find(t[0]);
      if (vit != ait->second.end()) {
        vit->second.erase(id);
        if (vit->second.empty()) ait->second.erase(vit);
      }
      if (ait->second.empty()) buckets_.erase(ait);
    }
  }
  return t;
}

const Tuple* TupleIndex::get(TupleId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::vector<TupleId> TupleIndex::find_matches(const Pattern& p,
                                              std::size_t limit) const {
  std::vector<TupleId> out;
  auto consider = [&](TupleId id) {
    const Tuple* t = get(id);
    if (t != nullptr && p.matches(*t)) out.push_back(id);
    return limit != 0 && out.size() >= limit;
  };

  if (p.arity() == 0) {
    for (TupleId id : nullary_) {
      if (consider(id)) break;
    }
    return out;
  }

  auto ait = buckets_.find(p.arity());
  if (ait == buckets_.end()) return out;

  if (auto key = p.key()) {
    auto vit = ait->second.find(*key);
    if (vit != ait->second.end()) {
      for (TupleId id : vit->second) {
        if (consider(id)) break;
      }
    }
    return out;
  }

  // Unkeyed pattern: scan every first-field bucket of this arity.
  for (const auto& [value, ids] : ait->second) {
    (void)value;
    for (TupleId id : ids) {
      if (consider(id)) return out;
    }
  }
  return out;
}

std::optional<TupleId> TupleIndex::find_first(const Pattern& p) const {
  auto ids = find_matches(p, 1);
  if (ids.empty()) return std::nullopt;
  return ids.front();
}

void TupleIndex::for_each(
    const std::function<void(TupleId, const Tuple&)>& fn) const {
  for (const auto& [id, t] : by_id_) fn(id, t);
}

}  // namespace tiamat::tuples
