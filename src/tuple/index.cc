#include "tuple/index.h"

#include <algorithm>

#if TIAMAT_AUDIT_ENABLED
#include <functional>
#include <sstream>
#include <string>
#endif

namespace tiamat::tuples {

namespace {

/// Inserts `id` keeping `v` sorted ascending. Ids are allocated
/// monotonically, so the common case is a pure push_back; out-of-order
/// inserts (tentative releases putting an old id back) binary-search.
void sorted_insert(std::vector<TupleId>& v, TupleId id) {
  if (v.empty() || v.back() < id) {
    v.push_back(id);
    return;
  }
  v.insert(std::lower_bound(v.begin(), v.end(), id), id);
}

void sorted_erase(std::vector<TupleId>& v, TupleId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

#if TIAMAT_AUDIT_ENABLED
bool sorted_contains(const std::vector<TupleId>& v, TupleId id) {
  return std::binary_search(v.begin(), v.end(), id);
}

bool strictly_ascending(const std::vector<TupleId>& v) {
  return std::adjacent_find(v.begin(), v.end(),
                            std::greater_equal<TupleId>()) == v.end();
}
#endif

}  // namespace

void TupleIndex::insert(TupleId id, Tuple t) {
  footprint_ += t.footprint();
  Shard& shard = shards_[t.arity()];
  sorted_insert(shard.ids, id);
  if (t.arity() > 0) sorted_insert(shard.buckets[t[0]], id);
  by_id_.emplace(id, std::move(t));
}

std::optional<Tuple> TupleIndex::erase(TupleId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  Tuple t = std::move(it->second);
  by_id_.erase(it);
  footprint_ -= t.footprint();
  auto sit = shards_.find(t.arity());
  if (sit != shards_.end()) {
    Shard& shard = sit->second;
    sorted_erase(shard.ids, id);
    if (t.arity() > 0) {
      auto bit = shard.buckets.find(t[0]);
      if (bit != shard.buckets.end()) {
        sorted_erase(bit->second, id);
        if (bit->second.empty()) shard.buckets.erase(bit);
      }
    }
    if (shard.ids.empty()) shards_.erase(sit);
  }
  return t;
}

const Tuple* TupleIndex::get(TupleId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::vector<TupleId> TupleIndex::find_matches(const CompiledPattern& p,
                                              std::size_t limit) const {
  std::vector<TupleId> out;
  lookup(p, [&](TupleId id, const Tuple&) {
    out.push_back(id);
    return limit == 0 || out.size() < limit;
  });
  TIAMAT_AUDIT_CHECK(if (p.keyed() && audit::sample())
                         audit_differential(p, out, limit));
  return out;
}

std::vector<TupleId> TupleIndex::find_matches(const Pattern& p,
                                              std::size_t limit) const {
  return find_matches(CompiledPattern(p), limit);
}

std::optional<TupleId> TupleIndex::find_first(const CompiledPattern& p) const {
  std::optional<TupleId> found;
  lookup(p, [&](TupleId id, const Tuple&) {
    found = id;
    return false;  // short-circuit after the first match
  });
  return found;
}

std::optional<TupleId> TupleIndex::find_first(const Pattern& p) const {
  return find_first(CompiledPattern(p));
}

std::size_t TupleIndex::count_matches(const CompiledPattern& p) const {
  std::size_t n = 0;
  lookup(p, [&](TupleId, const Tuple&) {
    ++n;
    return true;
  });
  return n;
}

std::size_t TupleIndex::count_matches(const Pattern& p) const {
  return count_matches(CompiledPattern(p));
}

void TupleIndex::for_each(
    const std::function<void(TupleId, const Tuple&)>& fn) const {
  for (const auto& [id, t] : by_id_) fn(id, t);
}

#if TIAMAT_AUDIT_ENABLED

namespace {

std::string describe(TupleId id, const Tuple& t) {
  std::ostringstream os;
  os << "tuple id " << id << " arity " << t.arity() << " " << t.to_string();
  return os.str();
}

}  // namespace

void TupleIndex::audit_check(const char* checkpoint) const {
  auto trap = [&](const std::string& invariant, const std::string& detail) {
    std::ostringstream os;
    os << detail << " | index size " << by_id_.size() << ", shards "
       << shards_.size() << ", footprint " << footprint_;
    audit::fail("TupleIndex", checkpoint, invariant, os.str());
  };

  // Ordering first: the membership checks below binary-search the id
  // vectors, so an unsorted list must trap as itself rather than as a
  // bogus membership miss.
  for (const auto& [arity, shard] : shards_) {
    if (shard.ids.empty()) {
      std::ostringstream os;
      os << "empty shard for arity " << arity << " not pruned";
      trap("shard-pruning", os.str());
      return;
    }
    if (!strictly_ascending(shard.ids)) {
      std::ostringstream os;
      os << "arity " << arity << " shard id list not strictly ascending";
      trap("id-order", os.str());
      return;
    }
    for (const auto& [key, ids] : shard.buckets) {
      if (ids.empty()) {
        trap("bucket-pruning",
             "empty bucket key=" + key.to_string() + " not pruned");
        return;
      }
      if (!strictly_ascending(ids)) {
        trap("id-order", "bucket key=" + key.to_string() +
                             " id list not strictly ascending");
        return;
      }
    }
  }

  // Forward direction: every stored tuple is reachable through its shard.
  std::size_t footprint_sum = 0;
  for (const auto& [id, t] : by_id_) {
    footprint_sum += t.footprint();
    auto sit = shards_.find(t.arity());
    if (sit == shards_.end()) {
      trap("shard-membership", describe(id, t) + " has no arity shard");
      return;
    }
    const Shard& shard = sit->second;
    if (!sorted_contains(shard.ids, id)) {
      trap("shard-membership",
           describe(id, t) + " missing from its shard id list");
      return;
    }
    if (t.arity() > 0) {
      auto bit = shard.buckets.find(t[0]);
      if (bit == shard.buckets.end() || !sorted_contains(bit->second, id)) {
        trap("bucket-membership",
             describe(id, t) + " missing from bucket key=" +
                 t[0].to_string());
        return;
      }
      if (ValueHash{}(bit->first) != ValueHash{}(t[0])) {
        trap("bucket-key-hash",
             describe(id, t) + " bucket key " + bit->first.to_string() +
                 " hashes differently from first field " + t[0].to_string());
        return;
      }
    }
  }
  if (footprint_sum != footprint_) {
    std::ostringstream os;
    os << "cached footprint " << footprint_ << " != recomputed "
       << footprint_sum;
    trap("footprint", os.str());
    return;
  }

  // Reverse direction: every shard/bucket id is a live tuple in the right
  // place and the membership counts balance — together with the forward
  // pass this proves "exactly one bucket" (no duplicates, no strays).
  std::size_t shard_ids_total = 0;
  std::size_t bucket_ids_total = 0;
  std::size_t keyed_tuples = 0;
  for (const auto& [id, t] : by_id_) {
    if (t.arity() > 0) ++keyed_tuples;
  }
  for (const auto& [arity, shard] : shards_) {
    shard_ids_total += shard.ids.size();
    for (TupleId id : shard.ids) {
      const Tuple* t = get(id);
      if (t == nullptr || t->arity() != arity) {
        std::ostringstream os;
        os << "shard arity " << arity << " lists id " << id
           << (t == nullptr ? " which is not stored"
                            : " whose tuple has a different arity");
        trap("shard-membership", os.str());
        return;
      }
    }
    for (const auto& [key, ids] : shard.buckets) {
      bucket_ids_total += ids.size();
      for (TupleId id : ids) {
        const Tuple* t = get(id);
        if (t == nullptr || t->arity() == 0 || !((*t)[0] == key)) {
          std::ostringstream os;
          os << "bucket key=" << key.to_string() << " lists id " << id
             << (t == nullptr ? " which is not stored"
                              : " whose first field differs");
          trap("bucket-membership", os.str());
          return;
        }
      }
    }
  }
  if (shard_ids_total != by_id_.size()) {
    std::ostringstream os;
    os << "shard id lists hold " << shard_ids_total << " ids for "
       << by_id_.size() << " stored tuples";
    trap("membership-count", os.str());
    return;
  }
  if (bucket_ids_total != keyed_tuples) {
    std::ostringstream os;
    os << "buckets hold " << bucket_ids_total << " ids for " << keyed_tuples
       << " keyed tuples";
    trap("membership-count", os.str());
  }
}

void TupleIndex::audit_corrupt_bucket_for_test(TupleId id) {
  const Tuple* t = get(id);
  if (t == nullptr || t->arity() == 0) return;
  auto sit = shards_.find(t->arity());
  if (sit == shards_.end()) return;
  auto bit = sit->second.buckets.find((*t)[0]);
  if (bit != sit->second.buckets.end()) sorted_erase(bit->second, id);
}

void TupleIndex::audit_differential(const CompiledPattern& p,
                                    const std::vector<TupleId>& got,
                                    std::size_t limit) const {
  // Linear-scan oracle: what a bucketless index would have returned.
  std::vector<TupleId> expect;
  for (const auto& [id, t] : by_id_) {
    if (!p.matches(t)) continue;
    expect.push_back(id);
    if (limit != 0 && expect.size() == limit) break;
  }
  if (expect == got) return;
  std::ostringstream os;
  os << "keyed probe returned " << got.size() << " ids, linear oracle "
     << expect.size() << " for pattern key=" << p.key().to_string()
     << " arity " << p.arity();
  audit::fail("TupleIndex", "find_matches", "probe-vs-oracle", os.str());
}

#endif  // TIAMAT_AUDIT_ENABLED

}  // namespace tiamat::tuples
