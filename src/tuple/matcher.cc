#include "tuple/matcher.h"

namespace tiamat::tuples {

CompiledPattern::CompiledPattern(Pattern p) : pattern_(std::move(p)) {
  const auto& fields = pattern_.fields();
  checks_.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const Field& f = fields[i];
    if (f.kind() != Field::Kind::kWildcard) {
      checks_.push_back(static_cast<std::uint32_t>(i));
    }
    if (i < 20) {
      signature_ |= static_cast<std::uint64_t>(
                        static_cast<std::uint8_t>(f.kind()) + 1)
                    << (3 * i);
    }
  }
  keyed_ = !fields.empty() && fields[0].kind() == Field::Kind::kActual;
  if (keyed_) key_hash_ = fields[0].actual().hash();
}

}  // namespace tiamat::tuples
