// Indexed tuple storage — the storage half of the matching engine.
//
// Spaces index tuples by (arity, first field): Linda programs almost always
// key tuples with a leading string/int tag ("req", "resp", "task", ...), so
// a keyed pattern probes one hash bucket instead of scanning the space.
// Unkeyed patterns fall back to walking the per-arity id list.
//
// Determinism contract (select_match and the seed tests depend on it):
// every lookup visits candidates in ascending id order — keyed probes walk
// a sorted-vector bucket, unkeyed scans walk the arity shard's sorted id
// list — so two runs with the same seed always see the same candidate
// sequence even though the buckets themselves live in unordered_maps.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "audit/audit.h"
#include "tuple/matcher.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"

namespace tiamat::tuples {

/// Identifies a stored tuple within one space for the lifetime of a run.
using TupleId = std::uint64_t;
inline constexpr TupleId kNoTuple = 0;

class TupleIndex {
 public:
  /// Stores `t` under caller-supplied id (ids must be unique and non-zero).
  void insert(TupleId id, Tuple t);

  /// Removes by id; returns the tuple if it was present.
  std::optional<Tuple> erase(TupleId id);

  const Tuple* get(TupleId id) const;
  bool contains(TupleId id) const { return by_id_.contains(id); }

  /// Ids of all stored tuples matching `p`, in ascending id order (the
  /// caller applies its own selection policy). `limit` == 0 means no limit.
  std::vector<TupleId> find_matches(const Pattern& p,
                                    std::size_t limit = 0) const;
  std::vector<TupleId> find_matches(const CompiledPattern& p,
                                    std::size_t limit = 0) const;

  /// First match in candidate order, if any — short-circuits after one
  /// match instead of materializing a vector.
  std::optional<TupleId> find_first(const Pattern& p) const;
  std::optional<TupleId> find_first(const CompiledPattern& p) const;

  /// Number of matches, without materializing ids.
  std::size_t count_matches(const Pattern& p) const;
  std::size_t count_matches(const CompiledPattern& p) const;

  /// Visits matches in ascending id order until `fn` returns false.
  /// The baselines use this for filtered first-match lookups (e.g. L²imbo's
  /// owner-restricted take) without materializing the full match set.
  template <typename Fn>  // Fn: (TupleId, const Tuple&) -> bool keep_going
  void for_each_match(const CompiledPattern& p, Fn&& fn) const {
    lookup(p, [&](TupleId id, const Tuple& t) { return fn(id, t); });
  }

  std::size_t size() const { return by_id_.size(); }
  bool empty() const { return by_id_.empty(); }

  /// Sum of footprints of stored tuples; the storage figure leases charge.
  std::size_t total_footprint() const { return footprint_; }

  /// Approximate resident bytes: stored tuple footprints plus a fixed
  /// per-entry estimate of index overhead (by_id_ map node, shard id slot,
  /// bucket slot). Deliberately a deterministic formula over entry counts —
  /// the telemetry layer samples it into gauges, so it must not depend on
  /// allocator behaviour.
  std::size_t approx_bytes() const {
    return footprint_ + by_id_.size() * kApproxEntryOverhead;
  }
  static constexpr std::size_t kApproxEntryOverhead = 64;

  /// Visits every (id, tuple) in ascending id order.
  void for_each(const std::function<void(TupleId, const Tuple&)>& fn) const;

  /// Engine accounting: bucket probes vs scan fallbacks, candidates
  /// examined/rejected. Always maintained; bind_metrics() additionally
  /// mirrors the stream into registry instruments under "match.*".
  const MatchStats& match_stats() const { return stats_; }
  void reset_match_stats() { stats_.reset(); }
  void bind_metrics(obs::Registry& r) { metrics_.bind(r, "match"); }

#if TIAMAT_AUDIT_ENABLED
  /// Full structural re-verification (audit builds only): every stored
  /// tuple in its arity shard's id list and — for arity > 0 — in exactly
  /// one bucket whose key equals (and hashes equal to) the tuple's first
  /// field; all id vectors strictly ascending; footprint accounting exact.
  /// Traps through audit::fail on violation.
  void audit_check(const char* checkpoint) const;

  /// Test hook: removes `id` from its shard bucket while leaving it in
  /// by_id_ and the shard id list, manufacturing a bucket-membership
  /// violation for the corruption-trap tests.
  void audit_corrupt_bucket_for_test(TupleId id);

 private:
  /// Differential oracle: re-runs a keyed find_matches as a linear scan of
  /// by_id_ and traps if the bucket probe returned a different id sequence.
  void audit_differential(const CompiledPattern& p,
                          const std::vector<TupleId>& got,
                          std::size_t limit) const;

 public:
#endif

 private:
  // One shard per arity: hash buckets by first field for keyed probes, plus
  // the shard-wide ascending id list for deterministic unkeyed scans.
  // Bucket id vectors are kept sorted; ids arrive mostly in increasing
  // order (spaces allocate them monotonically) so inserts are usually an
  // amortized-O(1) push_back.
  struct Shard {
    std::unordered_map<Value, std::vector<TupleId>, ValueHash> buckets;
    std::vector<TupleId> ids;
  };

  /// Shared lookup core: visits matching ids ascending until `fn` says
  /// stop. Records probe/scan + candidate accounting.
  template <typename Fn>  // Fn: (TupleId, const Tuple&) -> bool keep_going
  void lookup(const CompiledPattern& p, Fn&& fn) const;

  std::map<TupleId, Tuple> by_id_;
  std::unordered_map<std::size_t, Shard> shards_;  // by arity
  std::size_t footprint_ = 0;
  mutable MatchStats stats_;
  MatchMetrics metrics_;
};

template <typename Fn>
void TupleIndex::lookup(const CompiledPattern& p, Fn&& fn) const {
  auto sit = shards_.find(p.arity());
  if (sit == shards_.end()) return;
  const Shard& shard = sit->second;

  std::uint64_t examined = 0;
  std::uint64_t rejected = 0;
  auto done = [&] { metrics_.on_lookup_done(examined, rejected); };

  if (p.keyed()) {
    ++stats_.bucket_probes;
    metrics_.on_probe();
    auto bit = shard.buckets.find(p.key());
    if (bit != shard.buckets.end()) {
      for (TupleId id : bit->second) {
        ++examined;
        const Tuple& t = by_id_.find(id)->second;
        // Bucket membership already proves arity and first-field equality.
        if (!p.matches_rest(t)) {
          ++rejected;
          continue;
        }
        if (!fn(id, t)) break;
      }
    }
    stats_.candidates += examined;
    stats_.rejected += rejected;
    done();
    return;
  }

  ++stats_.scan_fallbacks;
  metrics_.on_scan();
  for (TupleId id : shard.ids) {
    ++examined;
    const Tuple& t = by_id_.find(id)->second;
    if (!p.matches(t)) {
      ++rejected;
      continue;
    }
    if (!fn(id, t)) break;
  }
  stats_.candidates += examined;
  stats_.rejected += rejected;
  done();
}

}  // namespace tiamat::tuples
