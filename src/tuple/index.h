// Indexed tuple storage.
//
// Spaces index tuples by (arity, first field): Linda programs almost always
// key tuples with a leading string/int tag ("req", "resp", "task", ...), so
// a keyed pattern probes one bucket instead of scanning the space. Unkeyed
// patterns fall back to scanning every bucket of the right arity.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "tuple/pattern.h"
#include "tuple/tuple.h"

namespace tiamat::tuples {

/// Identifies a stored tuple within one space for the lifetime of a run.
using TupleId = std::uint64_t;
inline constexpr TupleId kNoTuple = 0;

class TupleIndex {
 public:
  /// Stores `t` under caller-supplied id (ids must be unique and non-zero).
  void insert(TupleId id, Tuple t);

  /// Removes by id; returns the tuple if it was present.
  std::optional<Tuple> erase(TupleId id);

  const Tuple* get(TupleId id) const;
  bool contains(TupleId id) const { return by_id_.count(id) != 0; }

  /// Ids of all stored tuples matching `p`, in ascending id order (the
  /// caller applies its own selection policy). `limit` == 0 means no limit.
  std::vector<TupleId> find_matches(const Pattern& p,
                                    std::size_t limit = 0) const;

  /// First match by id order, if any — cheaper than find_matches when the
  /// caller only needs existence.
  std::optional<TupleId> find_first(const Pattern& p) const;

  std::size_t size() const { return by_id_.size(); }
  bool empty() const { return by_id_.empty(); }

  /// Sum of footprints of stored tuples; the storage figure leases charge.
  std::size_t total_footprint() const { return footprint_; }

  /// Visits every (id, tuple) in ascending id order.
  void for_each(const std::function<void(TupleId, const Tuple&)>& fn) const;

 private:
  // arity -> first-field value -> ids. Nullary tuples live in nullary_.
  using ValueBuckets = std::map<Value, std::set<TupleId>>;

  std::map<TupleId, Tuple> by_id_;
  std::map<std::size_t, ValueBuckets> buckets_;  // arity >= 1
  std::set<TupleId> nullary_;                    // arity == 0
  std::size_t footprint_ = 0;
};

}  // namespace tiamat::tuples
