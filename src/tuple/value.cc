#include "tuple/value.h"

#include <functional>
#include <sstream>

namespace tiamat::tuples {

const char* type_name(Type t) {
  switch (t) {
    case Type::kInt:
      return "int";
    case Type::kDouble:
      return "double";
    case Type::kBool:
      return "bool";
    case Type::kString:
      return "string";
    case Type::kBlob:
      return "blob";
  }
  return "?";
}

std::size_t Value::footprint() const {
  switch (type()) {
    case Type::kInt:
      return 8;
    case Type::kDouble:
      return 8;
    case Type::kBool:
      return 1;
    case Type::kString:
      return as_string().size() + 4;
    case Type::kBlob:
      return as_blob().size() + 4;
  }
  return 0;
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (type()) {
    case Type::kInt:
      os << as_int();
      break;
    case Type::kDouble:
      os << as_double();
      break;
    case Type::kBool:
      os << (as_bool() ? "true" : "false");
      break;
    case Type::kString:
      os << '"' << as_string() << '"';
      break;
    case Type::kBlob:
      os << "blob[" << as_blob().size() << "]";
      break;
  }
  return os.str();
}

std::size_t Value::hash() const {
  std::size_t h = std::hash<std::uint8_t>{}(static_cast<std::uint8_t>(type()));
  auto mix = [&h](std::size_t x) {
    h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  switch (type()) {
    case Type::kInt:
      mix(std::hash<std::int64_t>{}(as_int()));
      break;
    case Type::kDouble:
      mix(std::hash<double>{}(as_double()));
      break;
    case Type::kBool:
      mix(std::hash<bool>{}(as_bool()));
      break;
    case Type::kString:
      mix(std::hash<std::string>{}(as_string()));
      break;
    case Type::kBlob: {
      std::size_t bh = as_blob().size();
      for (std::uint8_t b : as_blob()) {
        bh = bh * 131 + b;
      }
      mix(bh);
      break;
    }
  }
  return h;
}

}  // namespace tiamat::tuples
