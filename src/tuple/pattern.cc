#include "tuple/pattern.h"

#include <sstream>

namespace tiamat::tuples {

Field Field::formal(Type t) {
  Field f;
  f.kind_ = Kind::kFormal;
  f.formal_type_ = t;
  return f;
}

Field Field::wildcard() {
  Field f;
  f.kind_ = Kind::kWildcard;
  return f;
}

Field Field::range(double lo, double hi) {
  Field f;
  f.kind_ = Kind::kRange;
  f.lo_ = lo;
  f.hi_ = hi;
  return f;
}

Field Field::prefix(std::string p) {
  Field f;
  f.kind_ = Kind::kPrefix;
  f.value_ = Value(std::move(p));
  return f;
}

bool Field::matches(const Value& v) const {
  switch (kind_) {
    case Kind::kActual:
      return v == value_;
    case Kind::kFormal:
      return v.type() == formal_type_;
    case Kind::kWildcard:
      return true;
    case Kind::kRange: {
      double x;
      if (v.is_int()) {
        x = static_cast<double>(v.as_int());
      } else if (v.is_double()) {
        x = v.as_double();
      } else {
        return false;
      }
      return x >= lo_ && x <= hi_;
    }
    case Kind::kPrefix: {
      if (!v.is_string()) return false;
      const std::string& s = v.as_string();
      const std::string& p = value_.as_string();
      return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
    }
  }
  return false;
}

std::string Field::to_string() const {
  switch (kind_) {
    case Kind::kActual:
      return value_.to_string();
    case Kind::kFormal:
      return std::string("?") + type_name(formal_type_);
    case Kind::kWildcard:
      return "*";
    case Kind::kRange: {
      std::ostringstream os;
      os << "[" << lo_ << ".." << hi_ << "]";
      return os.str();
    }
    case Kind::kPrefix:
      return value_.to_string() + "...";
  }
  return "?";
}

bool operator==(const Field& a, const Field& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Field::Kind::kActual:
      return a.value_ == b.value_;
    case Field::Kind::kFormal:
      return a.formal_type_ == b.formal_type_;
    case Field::Kind::kWildcard:
      return true;
    case Field::Kind::kRange:
      return a.lo_ == b.lo_ && a.hi_ == b.hi_;
    case Field::Kind::kPrefix:
      return a.value_ == b.value_;
  }
  return false;
}

Pattern Pattern::exactly(const Tuple& t) {
  std::vector<Field> fields;
  fields.reserve(t.arity());
  for (const Value& v : t) fields.emplace_back(v);
  return Pattern(std::move(fields));
}

bool Pattern::matches(const Tuple& t) const {
  if (t.arity() != arity()) return false;
  for (std::size_t i = 0; i < arity(); ++i) {
    if (!fields_[i].matches(t[i])) return false;
  }
  return true;
}

std::optional<Value> Pattern::key() const {
  if (!fields_.empty() && fields_[0].kind() == Field::Kind::kActual) {
    return fields_[0].actual();
  }
  return std::nullopt;
}

std::string Pattern::to_string() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].to_string();
  }
  os << '>';
  return os.str();
}

}  // namespace tiamat::tuples
