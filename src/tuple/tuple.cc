#include "tuple/tuple.h"

#include <sstream>

namespace tiamat::tuples {

std::size_t Tuple::footprint() const {
  std::size_t total = 8;  // arity + bookkeeping overhead
  for (const Value& v : fields_) total += v.footprint();
  return total;
}

std::string Tuple::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].to_string();
  }
  os << ')';
  return os.str();
}

std::size_t Tuple::hash() const {
  std::size_t h = fields_.size();
  for (const Value& v : fields_) {
    h ^= v.hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace tiamat::tuples
