#!/usr/bin/env bash
# Bounded chaos-fuzz pass (DESIGN.md §12): the shared driver behind
# scripts/check.sh and the CI fuzz job.
#
#   scripts/fuzz_smoke.sh <tiamat-fuzz> [<audit-tiamat-fuzz>]
#
# Four phases:
#   1. regression corpus — every seed in tests/fuzz_corpus/seeds.txt must
#      run clean (schedules that once found bugs stay green forever);
#   2. determinism — one seed run twice must print byte-identical
#      summaries (the P4 contract: fingerprint included);
#   3. fresh seeds — a small budget of new schedules per invocation
#      (FUZZ_FRESH_SEED pins the base seed; defaults to the date so CI
#      explores, while any trap's artifact pins the exact schedule);
#   4. audit death path (if an audit-preset binary is given) — an injected
#      index corruption must trap, write repro_<seed>.json, and --replay
#      must reproduce it exactly.
#
# Trap artifacts land in FUZZ_OUT_DIR (default /tmp/tiamat-fuzz-smoke) for
# CI upload. Exit 0 iff every phase passes.
set -euo pipefail
cd "$(dirname "$0")/.."

fuzz_bin=${1:?usage: fuzz_smoke.sh <tiamat-fuzz> [<audit-tiamat-fuzz>]}
audit_bin=${2:-}
out_dir=${FUZZ_OUT_DIR:-/tmp/tiamat-fuzz-smoke}
fresh_seed=${FUZZ_FRESH_SEED:-$(date +%Y%m%d)}
fresh_runs=${FUZZ_FRESH_RUNS:-4}
mkdir -p "${out_dir}"

echo "== fuzz: regression corpus =="
while read -r seed profile; do
  [[ -z "${seed}" || "${seed}" == \#* ]] && continue
  "${fuzz_bin}" --seed "${seed}" --profile "${profile}" --runs 1 \
    --out-dir "${out_dir}" || {
    echo "fuzz corpus regression: seed ${seed} (${profile}) trapped" >&2
    exit 1
  }
done < tests/fuzz_corpus/seeds.txt

echo "== fuzz: determinism (same seed, byte-identical summary) =="
a=$("${fuzz_bin}" --seed 7 --runs 1 --no-shrink --out-dir "${out_dir}")
b=$("${fuzz_bin}" --seed 7 --runs 1 --no-shrink --out-dir "${out_dir}")
[[ "${a}" == "${b}" ]] || {
  echo "fuzz determinism: two runs of seed 7 differ:" >&2
  diff <(echo "${a}") <(echo "${b}") >&2 || true
  exit 1
}

echo "== fuzz: fresh seeds (base ${fresh_seed}, ${fresh_runs} runs) =="
"${fuzz_bin}" --seed "${fresh_seed}" --runs "${fresh_runs}" \
  --max-events 160 --out-dir "${out_dir}" || {
  echo "fresh-seed fuzz trapped; minimized artifact in ${out_dir}" >&2
  exit 1
}

if [[ -n "${audit_bin}" ]]; then
  echo "== fuzz: audit death path (inject -> artifact -> replay) =="
  if "${audit_bin}" --seed 42 --inject-corruption --runs 1 \
      --out-dir "${out_dir}" > /dev/null; then
    echo "audit death path: injected corruption did not trap" >&2
    exit 1
  fi
  [[ -f "${out_dir}/repro_42.json" ]] || {
    echo "audit death path: no repro_42.json written" >&2
    exit 1
  }
  "${audit_bin}" --replay="${out_dir}/repro_42.json" || {
    echo "audit death path: replay did not reproduce the trap" >&2
    exit 1
  }
fi

echo "fuzz smoke passed."
