#!/usr/bin/env bash
# Instrumentation-overhead gate (DESIGN.md §13).
#
# The observability plane — trace record() calls, per-op monitor timings,
# scheduler clock reads in the loopback workers — is always on in production
# builds. This gate keeps it honest: it benches the default release tree
# against an identical tree with TIAMAT_OBS_OFF (every hot-path hook
# compiled out) on the loopback hot path and reports the throughput delta.
#
# Measurement: the two binaries run interleaved (on/off/on/off...) and the
# best (minimum) real_time per scenario is compared — min-of-N is the
# noise-robust estimator for "how fast can this code go", and interleaving
# cancels slow machine drift between trees.
#
# The gate is SOFT by default: wall-clock numbers on shared CI runners are
# still too noisy for a hard 3% threshold (A/A runs can differ by double
# digits), so a breach prints a loud warning and exits 0. Set
# OBS_OVERHEAD_HARD=1 on a quiet machine to make a breach fail the script.
#
# Tunables (environment):
#   OBS_OVERHEAD_TOL     allowed slowdown percent           (default 3)
#   OBS_OVERHEAD_RUNS    interleaved invocations per tree   (default 5)
#   OBS_OVERHEAD_FILTER  --benchmark_filter regex           (default chain/remote)
#   OBS_OVERHEAD_HARD    1 = breach exits 1                 (default soft)
#
# Usage: scripts/obs_overhead_gate.sh [--skip-build]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
tol=${OBS_OVERHEAD_TOL:-3}
runs=${OBS_OVERHEAD_RUNS:-5}
filter=${OBS_OVERHEAD_FILTER:-'BM_(KeyedTakeChain/4|RemoteTake/2)'}

if [[ "${1:-}" != "--skip-build" ]]; then
  echo "== obs-overhead: build release tree =="
  cmake --preset release >/dev/null
  cmake --build --preset release --target bench_loopback -j "${jobs}"
  echo "== obs-overhead: build obsoff tree (TIAMAT_OBS_OFF) =="
  cmake --preset obsoff >/dev/null
  cmake --build --preset obsoff --target bench_loopback -j "${jobs}"
fi

on_bin=build/bench/bench_loopback
off_bin=build-obsoff/bench/bench_loopback
for bin in "${on_bin}" "${off_bin}"; do
  [[ -x "${bin}" ]] || { echo "obs-overhead: missing ${bin} (build first)" >&2; exit 1; }
done

out_dir=$(mktemp -d /tmp/OBS_overhead.XXXXXX)
trap 'rm -rf "${out_dir}"' EXIT

run_bench() {
  local bin=$1 out=$2
  "${bin}" --transport=loopback \
    --benchmark_filter="${filter}" \
    --benchmark_format=json --benchmark_out="${out}" \
    --benchmark_out_format=json >/dev/null
}

echo "== obs-overhead: ${runs} interleaved invocation(s) per tree =="
for ((r = 0; r < runs; r++)); do
  run_bench "${on_bin}" "${out_dir}/on_${r}.json"
  run_bench "${off_bin}" "${out_dir}/off_${r}.json"
done

python3 - "${out_dir}" "${runs}" "${tol}" "${OBS_OVERHEAD_HARD:-0}" <<'PY'
import glob
import json
import os
import sys

out_dir, runs, tol, hard = sys.argv[1:5]
tol = float(tol)


def best_times(pattern):
    """benchmark-name -> min real_time across all invocations."""
    best = {}
    for path in glob.glob(os.path.join(out_dir, pattern)):
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        for b in doc.get("benchmarks", []):
            if b.get("aggregate_name"):
                continue
            name = b.get("name", "?")
            t = float(b.get("real_time", 0.0))
            if t <= 0.0:
                continue
            if name not in best or t < best[name]:
                best[name] = t
    return best


on = best_times("on_*.json")
off = best_times("off_*.json")
shared = sorted(set(on) & set(off))
if not shared:
    print("obs-overhead: no common benchmarks between trees", file=sys.stderr)
    sys.exit(1)

breaches = 0
for name in shared:
    overhead = (on[name] - off[name]) / off[name] * 100.0
    tag = "ok  "
    if overhead > tol:
        tag = "OVER"
        breaches += 1
    print(f"  {tag} {name}: instrumented {on[name]:.0f}ns vs bare "
          f"{off[name]:.0f}ns ({overhead:+.2f}%, budget {tol:g}%, "
          f"min of {runs})")

if breaches:
    print(f"obs-overhead: {breaches}/{len(shared)} scenario(s) over the "
          f"{tol:g}% instrumentation budget")
    if hard == "1":
        sys.exit(1)
    print("obs-overhead: soft gate — warning only "
          "(set OBS_OVERHEAD_HARD=1 to enforce)")
else:
    print(f"obs-overhead: all {len(shared)} scenario(s) within the "
          f"{tol:g}% budget")
PY
