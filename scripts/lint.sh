#!/usr/bin/env bash
# Static-analysis gate: the repo's custom determinism linter, then
# clang-tidy over the compilation database (when clang-tidy is installed).
#
# Usage: scripts/lint.sh [--tidy-only|--custom-only]
#
# Exit 0 only when every enabled stage is clean. clang-tidy is gated on
# availability: containers without LLVM tooling (like the stock build
# image) run only the custom linter and report the skip — the .clang-tidy
# config is still the contract wherever the tool exists (CI installs it).
set -euo pipefail
cd "$(dirname "$0")/.."

stage=${1:-all}

if [[ "${stage}" != "--tidy-only" ]]; then
  echo "== lint: fixture self-tests (analyzer rules, pass + fail) =="
  python3 tests/lint_fixtures/run_lint_fixtures.py
  echo "== lint: custom determinism + concurrency analyzer =="
  # The cross-TU rules read build/compile_commands.json when present; the
  # release preset exports it. Without it they fall back to walking src/.
  python3 scripts/lint_tiamat.py
fi

if [[ "${stage}" == "--custom-only" ]]; then
  exit 0
fi

tidy_bin=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "${cand}" >/dev/null 2>&1; then
    tidy_bin=${cand}
    break
  fi
done

if [[ -z "${tidy_bin}" ]]; then
  echo "== lint: clang-tidy not installed; skipping tidy stage =="
  exit 0
fi

echo "== lint: ${tidy_bin} =="
# The release preset exports compile_commands.json; make sure it exists.
if [[ ! -f build/compile_commands.json ]]; then
  cmake --preset release >/dev/null
fi

jobs=$(nproc 2>/dev/null || echo 4)
mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tests/*.cc')

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${tidy_bin}" -p build -j "${jobs}" \
    -quiet "${sources[@]}"
else
  printf '%s\n' "${sources[@]}" |
    xargs -P "${jobs}" -n 4 "${tidy_bin}" -p build --quiet
fi

echo "lint: all stages clean"
