#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh BENCH_*.json against a committed one.

The bench exporters snapshot the obs metrics registry, which iterates
deterministically — so for a fixed-seed, virtual-time bench the *counter*
section of the export is exactly reproducible, and any drift there is a
behavioural change (more messages, more lease churn, a different fan-out),
not noise. Timing-flavoured fields (histogram sum/mean/percentiles) and
calibration-dependent counters are compared too, but only warn.

Every instrument is classified hard or soft:

  hard   difference beyond tolerance fails the gate (exit 1)
  soft   difference beyond tolerance prints a warning only

Defaults: counters and histogram/sketch bucket counts are hard with 0%
tolerance (deterministic under a fixed seed); gauges are hard with
--gauge-tol relative tolerance (ratios like engine.candidates_per_lookup
are stable but float); histogram and quantile-sketch summary fields
(sum/mean/percentiles/max) are soft. `--hard PATTERN` /
`--soft PATTERN` (fnmatch over `kind:name`, first match wins, repeatable)
override the defaults per metric — e.g. bench_match accumulates counters
across google-benchmark calibration reruns, so its gate passes
`--soft 'counter:*'`.

Only instruments present in BOTH files are compared; added/removed
instruments are reported as warnings (new instrumentation should update
the committed baseline in the same PR). Unknown metric kinds and extra
top-level sections (e.g. the `series` telemetry document emitted by
`--series` runs) are ignored, so exporter additions never break old
baselines.

Usage:
  scripts/bench_compare.py BASELINE.json FRESH.json
      [--hard PATTERN]... [--soft PATTERN]...
      [--counter-tol PCT] [--gauge-tol PCT] [--soft-tol PCT] [--quiet]

Exit status: 0 within tolerances, 1 hard regression/malformed input.
"""

import argparse
import fnmatch
import json
import sys

HIST_HARD_FIELDS = ("count", "counts")
HIST_SOFT_FIELDS = ("sum", "mean", "p50", "p95", "p99")
SKETCH_HARD_FIELDS = ("count", "buckets")
SKETCH_SOFT_FIELDS = ("sum", "mean", "p50", "p90", "p99", "max")


def load_metrics(path):
    """Returns {(kind, name, labels-tuple): instrument-dict}."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot load {path}: {e}", file=sys.stderr)
        return None
    metrics = doc.get("metrics", doc)
    out = {}
    kinds = {"counters": "counter", "gauges": "gauge",
             "histograms": "histogram", "sketches": "sketch"}
    for kind, singular in kinds.items():
        for inst in metrics.get(kind, []):
            labels = tuple(sorted(inst.get("labels", {}).items()))
            key = (singular, inst.get("name", "?"), labels)
            out[key] = inst
    return out


def fmt_key(key):
    kind, name, labels = key
    lbl = ",".join(f"{k}={v}" for k, v in labels)
    return f"{kind}:{name}" + (f"{{{lbl}}}" if lbl else "")


def rel_delta(a, b):
    if a == b:
        return 0.0
    base = max(abs(a), abs(b))
    return abs(b - a) / base * 100.0 if base else 0.0


class Gate:
    def __init__(self, args):
        self.args = args
        self.failures = 0
        self.warnings = 0

    def classify(self, key):
        """-> (hard?, tolerance-percent) for one instrument key."""
        kind, name, _ = key
        probe = f"{kind}:{name}"
        for rule, pats in (("hard", self.args.hard), ("soft", self.args.soft)):
            for pat in pats:
                if fnmatch.fnmatch(probe, pat):
                    tol = (self.args.counter_tol if kind == "counter"
                           else self.args.gauge_tol)
                    return (rule == "hard",
                            tol if rule == "hard" else self.args.soft_tol)
        if kind == "counter":
            return True, self.args.counter_tol
        if kind == "gauge":
            return True, self.args.gauge_tol
        return True, self.args.counter_tol  # histogram/sketch: hard fields only

    def check(self, key, field, old, new, hard, tol):
        d = rel_delta(old, new)
        if d <= tol:
            return
        tag = "FAIL" if hard else "warn"
        if hard:
            self.failures += 1
        else:
            self.warnings += 1
        if hard or not self.args.quiet:
            print(f"  {tag} {fmt_key(key)}{field}: {old} -> {new} "
                  f"(delta {d:.2f}%, tol {tol:g}%)")

    def compare(self, key, old, new):
        kind = key[0]
        hard, tol = self.classify(key)
        if kind in ("counter", "gauge"):
            self.check(key, "", old.get("value", 0), new.get("value", 0),
                       hard, tol)
            return
        if kind == "sketch":
            # Quantile sketch: bucket shape gates, derived stats warn.
            for f in SKETCH_HARD_FIELDS:
                ov, nv = old.get(f), new.get(f)
                if ov is None or nv is None:
                    continue
                if f == "buckets":
                    if ov != nv:
                        self.check(key, " buckets",
                                   sum(n for _, n in ov),
                                   sum(n for _, n in nv), hard, tol)
                else:
                    self.check(key, f" {f}", ov, nv, hard, tol)
            for f in SKETCH_SOFT_FIELDS:
                ov, nv = old.get(f), new.get(f)
                if ov is None or nv is None:
                    continue
                self.check(key, f" {f}", ov, nv, False, self.args.soft_tol)
            return
        # Histogram: deterministic shape fields gate, timing fields warn.
        for f in HIST_HARD_FIELDS:
            ov, nv = old.get(f), new.get(f)
            if ov is None or nv is None:
                continue
            if f == "counts":
                if ov != nv:
                    self.check(key, " counts", sum(ov), sum(nv), hard, tol)
            else:
                self.check(key, f" {f}", ov, nv, hard, tol)
        for f in HIST_SOFT_FIELDS:
            ov, nv = old.get(f), new.get(f)
            if ov is None or nv is None:
                continue
            self.check(key, f" {f}", ov, nv, False, self.args.soft_tol)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--hard", action="append", default=[],
                    help="fnmatch over kind:name forcing hard gating")
    ap.add_argument("--soft", action="append", default=[],
                    help="fnmatch over kind:name forcing warn-only")
    ap.add_argument("--counter-tol", type=float, default=0.0,
                    help="relative %% tolerance for hard counters (default 0)")
    ap.add_argument("--gauge-tol", type=float, default=5.0,
                    help="relative %% tolerance for hard gauges (default 5)")
    ap.add_argument("--soft-tol", type=float, default=25.0,
                    help="warn threshold for soft comparisons (default 25)")
    ap.add_argument("--quiet", action="store_true",
                    help="print hard failures only")
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    fresh = load_metrics(args.fresh)
    if base is None or fresh is None:
        return 1
    if not base or not fresh:
        print("bench_compare: empty metrics section", file=sys.stderr)
        return 1

    print(f"bench_compare: {args.baseline} vs {args.fresh}")
    gate = Gate(args)
    shared = sorted(set(base) & set(fresh))
    for key in shared:
        gate.compare(key, base[key], fresh[key])

    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    if only_base and not args.quiet:
        print(f"  note: {len(only_base)} instrument(s) only in baseline "
              f"(e.g. {fmt_key(only_base[0])})")
    if only_fresh and not args.quiet:
        print(f"  note: {len(only_fresh)} instrument(s) only in fresh run "
              f"(e.g. {fmt_key(only_fresh[0])}) — update the baseline")

    print(f"bench_compare: {len(shared)} instruments compared, "
          f"{gate.failures} hard failure(s), {gate.warnings} warning(s)")
    return 1 if gate.failures else 0


if __name__ == "__main__":
    sys.exit(main())
