#!/usr/bin/env python3
"""Tiamat repo analyzer: determinism, hygiene and concurrency rules.

The matching engine's correctness contract (DESIGN.md #7, #8) rests on
ordering invariants that ordinary C++ review tools do not see: candidate
lists must be produced in ascending id order, waiter wakeup must be FIFO,
and nothing in library code may consult a nondeterministic source (hash-map
iteration order, wall clocks, raw PRNGs). On top of those per-file rules,
the analyzer reads build/compile_commands.json and parses across
translation units to machine-check the repo's *concurrency* story
(DESIGN.md #11): the strand-confinement contract protocol code is written
against, the thread-safety-annotation coverage the `tsa` preset compiles
under, and the trace-event vocabulary `tiamat-inspect` must stay able to
parse.

Per-file rules (each finding is `path:line: [rule] message`):

  unordered-iter  Range-for over (or *.begin() of) a container declared as
                  std::unordered_map/std::unordered_set anywhere in the
                  file's direct include scope. Results, replies and victim
                  selection must flow through sorted-id or engine paths.
  wall-clock      std::chrono clocks / time() / gettimeofday in src/:
                  protocol code must read time via transport::Clock only.
                  Exempt under src/transport/ — the loopback backend is the
                  one place that legitimately consults steady_clock.
  raw-random      rand()/srand()/std::random_device/std::mt19937 outside
                  src/sim/random.h: all randomness flows through sim::Rng
                  so runs are seed-reproducible.
  stdio           std::cout / std::cerr / printf-family in src/: library
                  code reports through obs:: or return values, never the
                  process's stdio (the audit trap dump is allowlisted).
  pragma-once     Every header in src/ starts its include guard with
                  #pragma once.
  include-path    Quoted project includes are root-relative ("tuple/x.h",
                  never "x.h" or "../tuple/x.h") and must resolve to a file
                  under src/.
  layering        The engine layers may only include downward:
                  src/audit -> {audit}; src/sim -> {sim, transport};
                  src/transport -> {transport, sim};
                  src/obs -> {obs, transport, audit};
                  src/tuple -> {tuple, obs, transport, audit}.
  sim-network     `#include "sim/network.h"` is confined to src/sim/, the
                  fault-scripting chaos harness (src/chaos/), and the
                  SimTransport adapter (src/transport/sim_transport.h).
                  Everything else talks transport::Transport; naming the sim
                  directly would silently couple protocol code to one
                  backend.
  concurrency     <thread>/<mutex>/<atomic>/<condition_variable> (and kin)
                  only under src/transport/. Protocol and engine code is
                  single-strand by contract — serialized per node by the
                  transport — and must not grow its own locking. The two
                  lock-free observability primitives (obs/cells.h relaxed
                  cells, obs/trace_ring.h SPSC ring) are the explicit,
                  file-by-file <atomic> allowlist — nothing else in obs/
                  gets threads or locks.
  unused-include  A header from the watched set (<unordered_map>,
                  <iostream>, <fstream>, <sstream>, <map>, ...) included
                  with no matching token use in the file. Applies to src/
                  and bench/ (headers dragging <fstream> tax every
                  includer).
  metric-name     Every metric name passed to Registry::counter/gauge/
                  histogram/sketch in src/ or bench/ (string literal, or
                  the `prefix + ".suffix"` idiom) must appear in the
                  checked-in catalog src/obs/metric_names.h, so a typo
                  cannot silently mint a fresh forever-zero instrument —
                  and every catalogued name must still be minted somewhere,
                  so the catalog cannot drift into fiction.

Cross-TU rules (compile-DB-aware; fall back to walking src/ when
build/compile_commands.json does not exist, e.g. on a fresh checkout):

  strand-confinement   The contract that keeps protocol code lock-free:
                  work crosses strands only through the audited transport
                  entry points (Transport::post/bind/wait_until,
                  TimerService::schedule_at/schedule_after). Findings:
                  (a) a std::function-taking virtual on the Transport/
                  TimerService surface that is not in the audited sink
                  list; (b) protocol code (src/ outside transport/ and
                  sim/) passing a capturing lambda to a non-sink method of
                  a Transport/TimerService-typed receiver; (c) any
                  std::thread/std::async/std::jthread expression in
                  protocol code.
  event-kind      Every obs::EventKind enumerator must (a) have a
                  `case EventKind::kX:` in to_string (trace.cc) — the one
                  table event_kind_from_string and the inspectors walk;
                  (b) be produced somewhere in src/ outside the obs
                  consumer files; and (c) the event_kind_from_string loop
                  bound must name the *last* enumerator, or kinds appended
                  after it are silently unparseable by tiamat-inspect.
  annotation-coverage  Every mutex-typed member in src/ must be a
                  transport::Mutex (clang TSA cannot see through a raw
                  std::mutex) and must appear in at least one
                  TIAMAT_GUARDED_BY / TIAMAT_REQUIRES / TIAMAT_ACQUIRE /
                  TIAMAT_EXCLUDES relationship somewhere in the tree.
                  src/transport/thread_annotations.h (the wrapper's own
                  internals) is exempt.
  stale-allowlist Every entry in scripts/lint_allowlist.txt must suppress
                  at least one live finding; an entry that no longer
                  matches anything is rot and must be deleted. Only checked
                  when the entry's rule is in the active rule set.

Audited exceptions live in scripts/lint_allowlist.txt; see that file for
the format and policy.

Usage: scripts/lint_tiamat.py [--root DIR] [--list-rules]
                              [--rules R1,R2,...] [--format text|json]
                              [--output FILE] [--compile-db PATH]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

SRC_EXTS = (".h", ".cc")

# Layer -> project include prefixes it may use. Directories not listed are
# unconstrained (they sit above the engine layers).
LAYERS = {
    "audit": ("audit/",),  # trap infra sits below everything it audits
    # sim/event_queue.h implements transport::TimerService (the queue IS the
    # simulator's timer backend), so sim reaches up to that one vocabulary
    # layer; everything else in sim stays self-contained.
    "sim": ("sim/", "transport/"),
    # transport's vocabulary aliases the sim's leaf headers (clock, random)
    # and SimTransport adapts the full simulator; the sim-network rule below
    # still confines sim/network.h to that single adapter.
    "transport": ("transport/", "sim/"),
    "obs": ("obs/", "transport/", "audit/"),  # time/ids via transport types
    "tuple": ("tuple/", "obs/", "transport/", "audit/"),
}

# Who may include the simulator's network header. Protocol code (src/net,
# src/core, src/lease, src/space, ...) must reach the substrate exclusively
# through transport::Transport; scenario scripting in tests/benches goes
# through SimTransport::network(). The chaos harness is scenario scripting
# that lives in src/ (it drives partitions, loss bursts and mobility against
# the simulated network directly), so src/chaos/ joins src/sim/ and the
# SimTransport adapter on the allowed list.
SIM_NETWORK_HEADER = "sim/network.h"
SIM_NETWORK_SCRIPTING = ("src/sim/", "src/chaos/")
SIM_NETWORK_ADAPTER = "src/transport/sim_transport.h"

# Real-thread machinery is the loopback backend's implementation detail;
# protocol and engine code must stay single-strand (deterministic under the
# sim, strand-serialized under loopback) and so may not name it.
CONCURRENCY_HEADERS = {
    "thread", "mutex", "shared_mutex", "atomic", "condition_variable",
    "future", "stop_token", "semaphore", "barrier", "latch",
}

# The concurrent-observability primitives: relaxed-atomic metric cells and
# the per-thread SPSC trace ring. They may use <atomic> (and only <atomic>)
# outside src/transport/ — writers are loopback strands, so the cells must
# be lock-free, but threads/mutexes stay banned (drain/snapshot protocols
# go through transport::Mutex via transport/thread_annotations.h).
CONCURRENCY_OBS_ALLOWLIST = {
    "src/obs/cells.h": {"atomic"},
    "src/obs/trace_ring.h": {"atomic"},
}

UNUSED_INCLUDE_TOKENS = {
    "unordered_map": "unordered_map",
    "unordered_set": "unordered_set",
    "iostream": r"std::(cin|cout|cerr|clog)",
    "cstdio": r"\b(printf|fprintf|sprintf|snprintf|puts|fputs|fopen)\b",
    "fstream": r"std::(i|o)?fstream|std::filebuf",
    "sstream": r"std::[io]?stringstream|std::stringbuf",
    "optional": r"std::optional|std::nullopt|std::make_optional",
    "map": r"std::(multi)?map\s*<",
    "set": r"std::(multi)?set\s*<",
    "deque": r"std::deque\s*<",
    "queue": r"std::(priority_)?queue\s*<",
    "array": r"std::array\s*<",
}

RULES = (
    "unordered-iter",
    "wall-clock",
    "raw-random",
    "stdio",
    "pragma-once",
    "include-path",
    "layering",
    "sim-network",
    "concurrency",
    "unused-include",
    "metric-name",
    "strand-confinement",
    "event-kind",
    "annotation-coverage",
    "stale-allowlist",
)

# Rules that apply to bench/ sources as well as src/. Bench code records
# into the same registry (names share the catalog contract) and its headers
# tax includers the same way; the determinism rules stay src/-only — benches
# legitimately use stdio, wall clocks, and google-benchmark internals.
BENCH_RULES = ("metric-name", "unused-include")

METRIC_CATALOG_HEADER = os.path.join("src", "obs", "metric_names.h")
ALLOWLIST_PATH = os.path.join("scripts", "lint_allowlist.txt")
DEFAULT_COMPILE_DB = os.path.join("build", "compile_commands.json")

# ---- strand-confinement vocabulary ------------------------------------------

# The audited cross-strand entry points. A callback handed to one of these
# runs on the destination node's strand (transport/transport.h's threading
# contract), so protocol code stays single-threaded by construction. Any
# OTHER path that moves a capturing lambda through the transport surface —
# or a new std::function-taking virtual on that surface — needs a strand-
# safety argument and a deliberate extension of this list.
STRAND_SINKS = frozenset(
    {"post", "bind", "wait_until", "schedule_at", "schedule_after"})

TRANSPORT_SURFACE_HEADERS = (
    os.path.join("src", "transport", "transport.h"),
    os.path.join("src", "transport", "timer.h"),
)

# Layers exempt from the protocol-side confinement scan: transport IS the
# threaded substrate, and sim is the single-threaded backend driving
# callbacks synchronously.
STRAND_EXEMPT_PREFIXES = ("src/transport/", "src/sim/")

THREAD_SPAWN_RE = re.compile(r"std::(thread|jthread|async)\b")

# `transport::Transport& tx_;` / `Transport* t` / constructor params — the
# receiver index for the confinement scan.
TRANSPORT_RECV_DECL_RE = re.compile(
    r"(?:transport::)?(?:Transport|TimerService)\s*[&*]\s*(\w+)")

MEMBER_CALL_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(\w+)\s*\(")
TIMERS_CALL_RE = re.compile(r"\btimers\s*\(\s*[^()]*\)\s*(?:\.|->)\s*(\w+)\s*\(")

# A lambda with a non-empty capture list ("[&]", "[this]", "[x, &y]" — not
# "[]"): the only lambda shape that can smuggle strand state.
CAPTURING_LAMBDA_RE = re.compile(r"\[(?=[^\]]*[^\s\]])[^\]]*\]\s*[({]|"
                                 r"\[(?=[^\]]*[^\s\]])[^\]]*\]\s*mutable")

VIRTUAL_FN_RE = re.compile(r"\bvirtual\b([^;{]*?)\b(\w+)\s*\(([^;{]*?)\)",
                           re.S)

# ---- event-kind vocabulary --------------------------------------------------

TRACE_HEADER = os.path.join("src", "obs", "trace.h")
TRACE_IMPL = os.path.join("src", "obs", "trace.cc")
# Consumer files: naming a kind here is bookkeeping, not production.
EVENT_CONSUMER_FILES = frozenset({
    "src/obs/trace.h", "src/obs/trace.cc",
    "src/obs/analysis.cc", "src/obs/analysis.h",
    "src/obs/chrome_trace.cc", "src/obs/chrome_trace.h",
})

# ---- annotation-coverage vocabulary -----------------------------------------

THREAD_ANNOTATIONS_HEADER = "src/transport/thread_annotations.h"
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?P<type>std::(?:recursive_|shared_|timed_)?mutex|(?:transport::)?Mutex)"
    r"\b\s+(?P<name>\w+)\s*(?:;|=|\{|TIAMAT_)",
    re.M)
TSA_ANNOTATION_RE = re.compile(
    r"TIAMAT_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY|"
    r"ACQUIRED_BEFORE|ACQUIRED_AFTER)\s*\(([^()]*)\)")

# ---- per-file regexes (unchanged rules) -------------------------------------

# Registry instrument factories with a first argument we can check
# statically: a string literal, or the `<expr> + ".suffix"` idiom used by
# prefix-parameterised helpers (tuple/matcher.h MatchMetrics).
METRIC_CALL_RE = re.compile(
    r'\b(?:counter|gauge|histogram|sketch)\s*\(\s*'
    r'(?:"(?P<name>[^"]+)"|[\w().\->\[\]]+\s*\+\s*"(?P<suffix>\.[^"]+)")'
)

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
RAW_RANDOM_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|std::random_device|std::mt19937"
)
STDIO_RE = re.compile(
    r"std::cout|std::cerr|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\(|\bfputs\s*\("
)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
RANGE_FOR_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?[^;()]*?:\s*(\*?[A-Za-z_][\w.>\-]*)\s*\)"
)
BEGIN_DEREF_RE = re.compile(r"\*\s*([A-Za-z_]\w*)\.begin\s*\(\s*\)")
UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set)\s*<")
IDENT_AFTER_TYPE_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*(?:;|=|\{|\()")


def strip_comments(text):
    """Blanks out // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    in_block = False
    while i < n:
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                i += 2
            else:
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            in_block = True
            i += 2
        elif text[i] in "\"'":
            quote = text[i]
            out.append(text[i])
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i : i + 2])
                    i += 2
                    continue
                out.append(text[i])
                i += 1
            if i < n:
                out.append(text[i])
                i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def balanced_paren_span(text, open_pos):
    """Returns (end, inner) for the '(' at open_pos, or (None, '')."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i, text[open_pos + 1 : i]
    return None, ""


def unordered_decl_names(text):
    """Names declared in `text` with an unordered_map/unordered_set type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        # Walk the template argument list to its matching '>'.
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        ident = IDENT_AFTER_TYPE_RE.match(text, i)
        if ident:
            names.add(ident.group(1))
    return names


class Allowlist:
    """Audited exceptions: `path-glob<TAB/space>rule<TAB/space>substring`.

    Every entry tracks how many findings it suppressed this run; the
    stale-allowlist rule turns a zero count into a finding.
    """

    def __init__(self, path):
        self.entries = []  # [glob, rule, substring, lineno, hits]
        self.path = path
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, 1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split(None, 2)
                if len(parts) < 2:
                    continue
                glob, rule = parts[0], parts[1]
                sub = parts[2] if len(parts) > 2 else "*"
                self.entries.append([glob, rule, sub, lineno, 0])

    def allows(self, rel, rule, line_text):
        hit = False
        for entry in self.entries:
            glob, arule, sub = entry[0], entry[1], entry[2]
            if arule != rule and arule != "*":
                continue
            if not fnmatch.fnmatch(rel, glob):
                continue
            if sub == "*" or sub in line_text:
                entry[4] += 1
                hit = True
                # Keep scanning: several entries may cover the same site,
                # and each deserves its hit for staleness accounting.
        return hit


class CompileDb:
    """TU universe from build/compile_commands.json (CMake exports it for
    the release preset). Degrades to walking src/ when absent — same rules,
    same findings on a fully-built tree; the DB just pins the universe to
    what is actually compiled."""

    def __init__(self, root, path):
        self.root = root
        self.sources = []  # rel paths of compiled .cc files under src/
        self.loaded = False
        if path is None or not os.path.exists(path):
            return
        try:
            with open(path, encoding="utf-8") as f:
                entries = json.load(f)
        except (OSError, ValueError):
            return
        seen = set()
        for e in entries:
            fn = e.get("file", "")
            if not os.path.isabs(fn):
                fn = os.path.normpath(os.path.join(e.get("directory", ""), fn))
            rel = os.path.relpath(fn, root).replace(os.sep, "/")
            if rel.startswith("src/") and rel.endswith(".cc") and \
                    rel not in seen and os.path.exists(os.path.join(root, fn if os.path.isabs(fn) else rel)):
                seen.add(rel)
                self.sources.append(rel)
        self.sources.sort()
        self.loaded = bool(self.sources)


class Linter:
    def __init__(self, root, active_rules=None, compile_db=None):
        self.root = root
        self.src = os.path.join(root, "src")
        self.active = frozenset(active_rules) if active_rules else \
            frozenset(RULES)
        self.full_run = self.active == frozenset(RULES)
        self.allow = Allowlist(os.path.join(root, ALLOWLIST_PATH))
        self.findings = []  # dicts: path, line, rule, message
        self._decl_cache = {}
        self._text_cache = {}
        self._closure_cache = {}
        self.catalog = self._load_metric_catalog()
        self.metric_uses = set()  # catalog names actually minted somewhere
        db_path = compile_db if compile_db is not None else \
            os.path.join(root, DEFAULT_COMPILE_DB)
        self.compile_db = CompileDb(root, db_path)

    # ---- shared infrastructure ----------------------------------------------

    def rel(self, path):
        return os.path.relpath(path, self.root).replace(os.sep, "/")

    def abspath(self, rel):
        return os.path.join(self.root, rel.replace("/", os.sep))

    def text_of(self, rel):
        """Comment-stripped text of a repo-relative file ('' if unreadable)."""
        if rel not in self._text_cache:
            try:
                with open(self.abspath(rel), encoding="utf-8") as f:
                    self._text_cache[rel] = strip_comments(f.read())
            except OSError:
                self._text_cache[rel] = ""
        return self._text_cache[rel]

    def enabled(self, rule):
        return rule in self.active

    def report(self, path, lineno, rule, msg, line_text=""):
        if rule not in self.active:
            return
        if os.path.isabs(path):
            rel = self.rel(path)
        else:
            # Cross-TU rules pass repo-relative paths; per-file rules pass
            # paths rooted at self.root (which may itself be relative).
            rel = os.path.normpath(path).replace(os.sep, "/")
            if self.root not in (".", "") and rel.startswith(
                    self.root.rstrip("/") + "/"):
                rel = rel[len(self.root.rstrip("/")) + 1:]
        if self.allow.allows(rel, rule, line_text):
            return
        self.findings.append(
            {"path": rel, "line": lineno, "rule": rule, "message": msg})

    def source_files(self):
        for dirpath, _, files in os.walk(self.src):
            for f in sorted(files):
                if f.endswith(SRC_EXTS):
                    yield os.path.join(dirpath, f)

    def bench_files(self):
        bench = os.path.join(self.root, "bench")
        if not os.path.isdir(bench):
            return
        for dirpath, _, files in os.walk(bench):
            for f in sorted(files):
                if f.endswith(SRC_EXTS):
                    yield os.path.join(dirpath, f)

    def include_closure(self, rel):
        """rel + transitively included project files under src/."""
        if rel in self._closure_cache:
            return self._closure_cache[rel]
        closure = set()
        stack = [rel]
        while stack:
            cur = stack.pop()
            if cur in closure:
                continue
            closure.add(cur)
            for line in self.text_of(cur).splitlines():
                m = INCLUDE_RE.match(line)
                if m and m.group(1) == '"':
                    target = "src/" + m.group(2)
                    if os.path.exists(self.abspath(target)):
                        stack.append(target)
        self._closure_cache[rel] = closure
        return closure

    def tu_universe(self):
        """Repo-relative src/ files the cross-TU rules reason over: the
        compile DB's TUs plus their include closures, or — without a DB —
        every file under src/."""
        if self.compile_db.loaded:
            universe = set()
            for cc in self.compile_db.sources:
                universe |= self.include_closure(cc)
            return sorted(universe)
        return sorted(self.rel(p) for p in self.source_files())

    # ---- metric catalog -----------------------------------------------------

    def _load_metric_catalog(self):
        """name -> line number, from the checked-in catalog header."""
        path = os.path.join(self.root, METRIC_CATALOG_HEADER)
        try:
            with open(path, encoding="utf-8") as f:
                text = strip_comments(f.read())
        except OSError:
            return None
        catalog = {}
        for lineno, line in enumerate(text.splitlines(), 1):
            for name in re.findall(r'"([^"]+)"', line):
                catalog.setdefault(name, lineno)
        return catalog

    # ---- per-file pass ------------------------------------------------------

    def decls_of(self, path):
        if path not in self._decl_cache:
            try:
                with open(path, encoding="utf-8") as f:
                    text = strip_comments(f.read())
            except OSError:
                text = ""
            self._decl_cache[path] = unordered_decl_names(text)
        return self._decl_cache[path]

    def include_scope(self, path, text):
        """Unordered names visible to `path`: its own + direct includes'."""
        names = set(unordered_decl_names(text))
        for line in text.splitlines():
            m = INCLUDE_RE.match(line)
            if m and m.group(1) == '"':
                target = os.path.join(self.src, m.group(2))
                if os.path.exists(target):
                    names |= self.decls_of(target)
        return names

    def lint_file(self, path):
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments(raw)
        lines = text.splitlines()
        rel = self.rel(path)
        is_header = path.endswith(".h")

        unordered = self.include_scope(path, text)

        if is_header and "#pragma once" not in raw:
            self.report(path, 1, "pragma-once",
                        "header lacks '#pragma once'")

        self._lint_includes(path, rel, lines, text)
        self._lint_metric_names(path, text)

        for i, line in enumerate(lines, 1):
            self._lint_line(path, i, line, unordered)

    def _lint_metric_names(self, path, text):
        """Registry factory calls must use catalogued names (or suffixes)."""
        if self.catalog is None:
            return  # reported once, in run()
        if self.rel(path) == METRIC_CATALOG_HEADER:
            return
        for m in METRIC_CALL_RE.finditer(text):
            lineno = text.count("\n", 0, m.start()) + 1
            name, suffix = m.group("name"), m.group("suffix")
            if name is not None:
                if name in self.catalog:
                    self.metric_uses.add(name)
                else:
                    self.report(path, lineno, "metric-name",
                                f'metric name "{name}" is not in '
                                f"{METRIC_CATALOG_HEADER}", m.group(0))
            elif suffix is not None:
                matching = [c for c in self.catalog if c.endswith(suffix)]
                if matching:
                    self.metric_uses.update(matching)
                else:
                    self.report(path, lineno, "metric-name",
                                f'no catalogued metric name ends in "{suffix}" '
                                f"({METRIC_CATALOG_HEADER})", m.group(0))

    def _lint_catalog_drift(self):
        """Catalogued names nothing mints any more are drift: the catalog is
        a reviewed contract, and a dead entry masks the next typo."""
        if self.catalog is None:
            self.report(os.path.join(self.root, METRIC_CATALOG_HEADER), 1,
                        "metric-name",
                        f"{METRIC_CATALOG_HEADER} is missing; the metric "
                        "name catalog is a checked-in contract")
            return
        for name in sorted(self.catalog):
            if name not in self.metric_uses:
                self.report(os.path.join(self.root, METRIC_CATALOG_HEADER),
                            self.catalog[name], "metric-name",
                            f'catalogued metric name "{name}" is never '
                            "minted in src/ or bench/ (stale catalog entry)",
                            name)

    def _lint_includes(self, path, rel, lines, text, rules=None):
        layer = rel.split("/")[1] if rel.count("/") >= 2 else ""
        allowed = LAYERS.get(layer)
        on = (lambda r: True) if rules is None else (lambda r: r in rules)
        for i, line in enumerate(lines, 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            kind, inc = m.groups()
            if kind == '"':
                if not on("include-path"):
                    continue
                if inc.startswith(".") or "/" not in inc:
                    self.report(path, i, "include-path",
                                f'"{inc}" must be root-relative '
                                '(e.g. "tuple/index.h")', line)
                elif not os.path.exists(os.path.join(self.src, inc)):
                    self.report(path, i, "include-path",
                                f'"{inc}" does not resolve under src/', line)
                if allowed and "/" in inc and not inc.startswith(allowed):
                    self.report(path, i, "layering",
                                f"src/{layer} may only include "
                                f"{{{', '.join(allowed)}}}, got \"{inc}\"",
                                line)
                if (inc == SIM_NETWORK_HEADER
                        and not rel.startswith(SIM_NETWORK_SCRIPTING)
                        and rel != SIM_NETWORK_ADAPTER):
                    self.report(path, i, "sim-network",
                                f'"{SIM_NETWORK_HEADER}" may only be '
                                f"included by {', '.join(SIM_NETWORK_SCRIPTING)} and "
                                f"{SIM_NETWORK_ADAPTER}; go through "
                                "transport::Transport", line)
            else:
                if (on("concurrency") and inc in CONCURRENCY_HEADERS
                        and not rel.startswith("src/transport/")
                        and inc not in CONCURRENCY_OBS_ALLOWLIST.get(
                            rel, ())):
                    self.report(path, i, "concurrency",
                                f"<{inc}> outside src/transport/: protocol "
                                "code is single-strand; threads and locks "
                                "live in the transport backends (lock-free "
                                "obs cells are allowlisted file-by-file)",
                                line)
                token = UNUSED_INCLUDE_TOKENS.get(inc)
                if token and on("unused-include"):
                    body = "\n".join(l for j, l in enumerate(lines, 1)
                                     if j != i)
                    if not re.search(token, body):
                        self.report(path, i, "unused-include",
                                    f"<{inc}> included but never used", line)

    def _lint_line(self, path, lineno, line, unordered):
        m = WALL_CLOCK_RE.search(line)
        if m and not self.rel(path).startswith("src/transport/"):
            self.report(path, lineno, "wall-clock",
                        f"wall-clock source '{m.group(0).strip()}' in "
                        "library code (use transport::Clock)", line)
        m = RAW_RANDOM_RE.search(line)
        if m:
            self.report(path, lineno, "raw-random",
                        f"raw randomness '{m.group(0).strip()}' (use "
                        "sim::Rng)", line)
        m = STDIO_RE.search(line)
        if m:
            self.report(path, lineno, "stdio",
                        f"stdio output '{m.group(0).strip()}' in src/", line)

        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(1).lstrip("*")
            if expr.endswith(")"):
                continue  # function-call result, not a member walk
            tail = re.split(r"\.|->", expr)[-1]
            if tail in unordered:
                self.report(path, lineno, "unordered-iter",
                            f"range-for over unordered container '{expr}' "
                            "(iterate a sorted copy or an ordered index)",
                            line)
        for m in BEGIN_DEREF_RE.finditer(line):
            if m.group(1) in unordered:
                self.report(path, lineno, "unordered-iter",
                            f"*{m.group(1)}.begin() on unordered container "
                            "is a nondeterministic pick", line)

    # ---- cross-TU rules -----------------------------------------------------

    def _lint_strand_confinement(self, universe):
        # (a) Audit the transport surface itself: every std::function-taking
        # virtual is a cross-strand entry point and must be in the audited
        # sink list.
        for header in TRANSPORT_SURFACE_HEADERS:
            rel = header.replace(os.sep, "/")
            text = self.text_of(rel)
            for m in VIRTUAL_FN_RE.finditer(text):
                name, args = m.group(2), m.group(3)
                if "std::function" not in args:
                    continue
                if name not in STRAND_SINKS:
                    lineno = text.count("\n", 0, m.start()) + 1
                    self.report(rel, lineno, "strand-confinement",
                                f"'{name}' is a std::function-taking virtual "
                                "on the transport surface but not in the "
                                "audited sink list "
                                f"({{{', '.join(sorted(STRAND_SINKS))}}}); "
                                "extend the list only with a strand-safety "
                                "argument (DESIGN.md #11)", m.group(0))

        # (b) Receiver index: names declared anywhere in the universe with a
        # Transport/TimerService reference or pointer type.
        receivers = set()
        for rel in universe:
            for m in TRANSPORT_RECV_DECL_RE.finditer(self.text_of(rel)):
                receivers.add(m.group(1))

        # (c) Protocol-side scan: capturing lambdas may cross the transport
        # surface only through the sinks; thread spawning is banned outright.
        for rel in universe:
            if rel.startswith(STRAND_EXEMPT_PREFIXES):
                continue
            text = self.text_of(rel)
            for lineno, line in enumerate(text.splitlines(), 1):
                m = THREAD_SPAWN_RE.search(line)
                if m:
                    self.report(rel, lineno, "strand-confinement",
                                f"'{m.group(0)}' in protocol code: strands "
                                "are the only concurrency; cross them via "
                                "Transport::post or TimerService", line)
            for m in MEMBER_CALL_RE.finditer(text):
                recv, method = m.group(1), m.group(2)
                if recv not in receivers or method in STRAND_SINKS:
                    continue
                end, inner = balanced_paren_span(text, m.end() - 1)
                if end is None or not CAPTURING_LAMBDA_RE.search(inner):
                    continue
                lineno = text.count("\n", 0, m.start()) + 1
                self.report(rel, lineno, "strand-confinement",
                            f"capturing lambda passed to '{recv}.{method}'"
                            ": not an audited strand re-entry point "
                            f"({{{', '.join(sorted(STRAND_SINKS))}}}) — "
                            "state captured here may escape its strand",
                            text.splitlines()[lineno - 1])
            for m in TIMERS_CALL_RE.finditer(text):
                method = m.group(1)
                if method in STRAND_SINKS or method == "cancel" \
                        or method == "now":
                    continue
                end, inner = balanced_paren_span(text, m.end() - 1)
                if end is None or not CAPTURING_LAMBDA_RE.search(inner):
                    continue
                lineno = text.count("\n", 0, m.start()) + 1
                self.report(rel, lineno, "strand-confinement",
                            f"capturing lambda passed to timers().{method}: "
                            "not an audited strand re-entry point",
                            text.splitlines()[lineno - 1])

    def _lint_event_kinds(self, universe):
        header_rel = TRACE_HEADER.replace(os.sep, "/")
        impl_rel = TRACE_IMPL.replace(os.sep, "/")
        header = self.text_of(header_rel)
        if not header:
            return  # no trace vocabulary in this tree (fixture roots)
        m = re.search(r"enum\s+class\s+EventKind[^{]*\{", header)
        if not m:
            return
        end, inner = None, ""
        depth = 0
        for i in range(m.end() - 1, len(header)):
            if header[i] == "{":
                depth += 1
            elif header[i] == "}":
                depth -= 1
                if depth == 0:
                    end, inner = i, header[m.end() : i]
                    break
        if end is None:
            return
        enumerators = []  # (name, lineno)
        for em in re.finditer(r"\b(k[A-Z]\w*)\s*(?:=\s*\d+)?\s*(?=,|\}|$)",
                              inner):
            lineno = header.count("\n", 0, m.end() + em.start()) + 1
            enumerators.append((em.group(1), lineno))
        if not enumerators:
            return

        impl = self.text_of(impl_rel)
        cases = set(re.findall(r"case\s+EventKind::(k\w+)", impl))
        for name, lineno in enumerators:
            if name not in cases:
                self.report(header_rel, lineno, "event-kind",
                            f"EventKind::{name} has no case in to_string "
                            f"({impl_rel}): unprintable and — via the "
                            "from_string walk — unparseable by "
                            "tiamat-inspect", name)

        bound = re.search(
            r"<=\s*static_cast<\s*int\s*>\(\s*EventKind::(k\w+)\s*\)", impl)
        last = enumerators[-1][0]
        if bound and bound.group(1) != last:
            lineno = impl.count("\n", 0, bound.start()) + 1
            self.report(impl_rel, lineno, "event-kind",
                        "event_kind_from_string walks the enum only up to "
                        f"EventKind::{bound.group(1)}, but the last "
                        f"enumerator is {last}: kinds after the bound are "
                        "silently unparseable", bound.group(0))

        produced = set()
        for rel in universe:
            if rel in EVENT_CONSUMER_FILES:
                continue
            for name in re.findall(r"EventKind::(k\w+)", self.text_of(rel)):
                produced.add(name)
        for name, lineno in enumerators:
            if name not in produced:
                self.report(header_rel, lineno, "event-kind",
                            f"EventKind::{name} is never produced in src/ "
                            "(outside the obs consumer files): dead "
                            "vocabulary, or the producer was lost in a "
                            "refactor", name)

    def _lint_annotation_coverage(self, universe):
        refs = set()
        for rel in universe:
            for args in TSA_ANNOTATION_RE.findall(self.text_of(rel)):
                for arg in args.split(","):
                    idents = re.findall(r"[A-Za-z_]\w*", arg)
                    if idents:
                        refs.add(idents[-1])
        for rel in universe:
            if rel == THREAD_ANNOTATIONS_HEADER:
                continue  # the wrapper's own std::mutex internals
            text = self.text_of(rel)
            for m in MUTEX_MEMBER_RE.finditer(text):
                lineno = text.count("\n", 0, m.start()) + 1
                mtype, name = m.group("type"), m.group("name")
                line = text.splitlines()[lineno - 1]
                if mtype.startswith("std::"):
                    self.report(rel, lineno, "annotation-coverage",
                                f"raw {mtype} member '{name}': declare it "
                                "transport::Mutex "
                                "(transport/thread_annotations.h) so clang "
                                "TSA can track it", line)
                elif name not in refs:
                    self.report(rel, lineno, "annotation-coverage",
                                f"Mutex member '{name}' appears in no "
                                "TIAMAT_GUARDED_BY/REQUIRES/ACQUIRE/EXCLUDES "
                                "relationship: unprovable locking discipline",
                                line)

    def _lint_stale_allowlist(self):
        """Entries that suppressed nothing are rot. Skipped for entries whose
        rule did not run (partial --rules invocations must not cry stale)."""
        for glob, rule, sub, lineno, hits in self.allow.entries:
            if hits > 0:
                continue
            if rule == "*" and not self.full_run:
                continue
            if rule != "*" and (rule not in self.active or rule not in RULES):
                if rule in RULES:
                    continue
                self.report(ALLOWLIST_PATH.replace(os.sep, "/"), lineno,
                            "stale-allowlist",
                            f"allowlist entry names unknown rule '{rule}'",
                            rule)
                continue
            self.report(ALLOWLIST_PATH.replace(os.sep, "/"), lineno,
                        "stale-allowlist",
                        f"allowlist entry ({glob} {rule} {sub}) no longer "
                        "suppresses any finding; delete it", sub)

    # ---- driver -------------------------------------------------------------

    def run(self):
        per_file_rules = set(RULES) - {
            "strand-confinement", "event-kind", "annotation-coverage",
            "stale-allowlist"}
        if self.active & per_file_rules:
            for path in self.source_files():
                self.lint_file(path)
            self._lint_bench_files()
            if self.enabled("metric-name"):
                self._lint_catalog_drift()
        universe = None
        for rule, fn in (("strand-confinement", self._lint_strand_confinement),
                         ("event-kind", self._lint_event_kinds),
                         ("annotation-coverage",
                          self._lint_annotation_coverage)):
            if self.enabled(rule):
                if universe is None:
                    universe = self.tu_universe()
                fn(universe)
        if self.enabled("stale-allowlist"):
            self._lint_stale_allowlist()
        self.findings.sort(key=lambda f: (f["path"], f["line"], f["rule"]))
        return self.findings

    def _lint_bench_files(self):
        """bench/ shares the catalog contract and the include-hygiene rules
        (BENCH_RULES); the determinism rules stay src/-only."""
        for path in self.bench_files():
            try:
                with open(path, encoding="utf-8") as fh:
                    text = strip_comments(fh.read())
            except OSError:
                continue
            self._lint_metric_names(path, text)
            self._lint_includes(path, self.rel(path), text.splitlines(),
                                text, rules=("unused-include",))


def render_text(findings):
    return [f"{f['path']}:{f['line']}: [{f['rule']}] {f['message']}"
            for f in findings]


def render_json(linter, findings):
    counts = {}
    for f in findings:
        counts[f["rule"]] = counts.get(f["rule"], 0) + 1
    return json.dumps(
        {
            "tool": "lint_tiamat",
            "version": 2,
            "compile_db": ("build/compile_commands.json"
                           if linter.compile_db.loaded else None),
            "rules": sorted(linter.active),
            "findings": findings,
            "counts": dict(sorted(counts.items())),
            "clean": not findings,
        },
        indent=2) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--output", default=None,
                    help="write the report here instead of stdout")
    ap.add_argument("--compile-db", default=None,
                    help="compile_commands.json path "
                         "(default: build/compile_commands.json)")
    args = ap.parse_args()

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    active = None
    if args.rules:
        active = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in active if r not in RULES]
        if unknown:
            print(f"lint_tiamat: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint_tiamat: no src/ under {root}", file=sys.stderr)
        return 2

    linter = Linter(root, active_rules=active, compile_db=args.compile_db)
    findings = linter.run()

    if args.format == "json":
        out = render_json(linter, findings)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as f:
                f.write(out)
        else:
            sys.stdout.write(out)
    else:
        lines = render_text(findings)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as f:
                f.write("\n".join(lines) + ("\n" if lines else ""))
        else:
            for line in lines:
                print(line)
    if findings:
        print(f"lint_tiamat: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if args.format != "json" and not args.output:
        print("lint_tiamat: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
