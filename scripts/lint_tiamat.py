#!/usr/bin/env python3
"""Tiamat repo linter: structural determinism + hygiene rules over src/.

The matching engine's correctness contract (DESIGN.md #7, #8) rests on
ordering invariants that ordinary C++ review tools do not see: candidate
lists must be produced in ascending id order, waiter wakeup must be FIFO,
and nothing in library code may consult a nondeterministic source (hash-map
iteration order, wall clocks, raw PRNGs). This linter enforces those repo
invariants mechanically so refactors are machine-checked, not hoped-safe.

Rules (each finding is `path:line: [rule] message`):

  unordered-iter  Range-for over (or *.begin() of) a container declared as
                  std::unordered_map/std::unordered_set anywhere in the
                  file's direct include scope. Results, replies and victim
                  selection must flow through sorted-id or engine paths.
  wall-clock      std::chrono clocks / time() / gettimeofday in src/:
                  protocol code must read time via transport::Clock only.
                  Exempt under src/transport/ — the loopback backend is the
                  one place that legitimately consults steady_clock.
  raw-random      rand()/srand()/std::random_device/std::mt19937 outside
                  src/sim/random.h: all randomness flows through sim::Rng
                  so runs are seed-reproducible.
  stdio           std::cout / std::cerr / printf-family in src/: library
                  code reports through obs:: or return values, never the
                  process's stdio (the audit trap dump is allowlisted).
  pragma-once     Every header in src/ starts its include guard with
                  #pragma once.
  include-path    Quoted project includes are root-relative ("tuple/x.h",
                  never "x.h" or "../tuple/x.h") and must resolve to a file
                  under src/.
  layering        The engine layers may only include downward:
                  src/audit -> {audit}; src/sim -> {sim, transport};
                  src/transport -> {transport, sim};
                  src/obs -> {obs, transport, audit};
                  src/tuple -> {tuple, obs, transport, audit}.
  sim-network     `#include "sim/network.h"` is confined to src/sim/ and the
                  SimTransport adapter (src/transport/sim_transport.h).
                  Everything else talks transport::Transport; naming the sim
                  directly would silently couple protocol code to one
                  backend.
  concurrency     <thread>/<mutex>/<atomic>/<condition_variable> (and kin)
                  only under src/transport/. Protocol and engine code is
                  single-strand by contract — serialized per node by the
                  transport — and must not grow its own locking.
  unused-include  #include <unordered_map> / <unordered_set> / <iostream> /
                  <cstdio> / <fstream> with no matching token use in the
                  file (headers dragging <fstream> tax every includer).
  metric-name     Every metric name passed to Registry::counter/gauge/
                  histogram in src/ or bench/ (string literal, or the
                  `prefix + ".suffix"` idiom) must appear in the checked-in
                  catalog src/obs/metric_names.h, so a typo cannot silently
                  mint a fresh forever-zero instrument.

Audited exceptions live in scripts/lint_allowlist.txt; see that file for
the format and policy.

Usage: scripts/lint_tiamat.py [--root DIR] [--list-rules]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import fnmatch
import os
import re
import sys

SRC_EXTS = (".h", ".cc")

# Layer -> project include prefixes it may use. Directories not listed are
# unconstrained (they sit above the engine layers).
LAYERS = {
    "audit": ("audit/",),  # trap infra sits below everything it audits
    # sim/event_queue.h implements transport::TimerService (the queue IS the
    # simulator's timer backend), so sim reaches up to that one vocabulary
    # layer; everything else in sim stays self-contained.
    "sim": ("sim/", "transport/"),
    # transport's vocabulary aliases the sim's leaf headers (clock, random)
    # and SimTransport adapts the full simulator; the sim-network rule below
    # still confines sim/network.h to that single adapter.
    "transport": ("transport/", "sim/"),
    "obs": ("obs/", "transport/", "audit/"),  # time/ids via transport types
    "tuple": ("tuple/", "obs/", "transport/", "audit/"),
}

# The one file outside src/sim/ that may include the simulator's network
# header. Protocol code (src/net, src/core, src/lease, src/space, ...) must
# reach the substrate exclusively through transport::Transport; scenario
# scripting in tests/benches goes through SimTransport::network().
SIM_NETWORK_HEADER = "sim/network.h"
SIM_NETWORK_ADAPTER = "src/transport/sim_transport.h"

# Real-thread machinery is the loopback backend's implementation detail;
# protocol and engine code must stay single-strand (deterministic under the
# sim, strand-serialized under loopback) and so may not name it.
CONCURRENCY_HEADERS = {
    "thread", "mutex", "shared_mutex", "atomic", "condition_variable",
    "future", "stop_token", "semaphore", "barrier", "latch",
}

UNUSED_INCLUDE_TOKENS = {
    "unordered_map": "unordered_map",
    "unordered_set": "unordered_set",
    "iostream": r"std::(cin|cout|cerr|clog)",
    "cstdio": r"\b(printf|fprintf|sprintf|snprintf|puts|fputs|fopen)\b",
    "fstream": r"std::(i|o)?fstream|std::filebuf",
}

RULES = (
    "unordered-iter",
    "wall-clock",
    "raw-random",
    "stdio",
    "pragma-once",
    "include-path",
    "layering",
    "sim-network",
    "concurrency",
    "unused-include",
    "metric-name",
)

METRIC_CATALOG_HEADER = os.path.join("src", "obs", "metric_names.h")

# Registry instrument factories with a first argument we can check
# statically: a string literal, or the `<expr> + ".suffix"` idiom used by
# prefix-parameterised helpers (tuple/matcher.h MatchMetrics).
METRIC_CALL_RE = re.compile(
    r'\b(?:counter|gauge|histogram|sketch)\s*\(\s*'
    r'(?:"(?P<name>[^"]+)"|[\w().\->\[\]]+\s*\+\s*"(?P<suffix>\.[^"]+)")'
)

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
RAW_RANDOM_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|std::random_device|std::mt19937"
)
STDIO_RE = re.compile(
    r"std::cout|std::cerr|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\(|\bfputs\s*\("
)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
RANGE_FOR_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?[^;()]*?:\s*(\*?[A-Za-z_][\w.>\-]*)\s*\)"
)
BEGIN_DEREF_RE = re.compile(r"\*\s*([A-Za-z_]\w*)\.begin\s*\(\s*\)")
UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set)\s*<")
IDENT_AFTER_TYPE_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*(?:;|=|\{|\()")


def strip_comments(text):
    """Blanks out // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    in_block = False
    while i < n:
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                i += 2
            else:
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            in_block = True
            i += 2
        elif text[i] in "\"'":
            quote = text[i]
            out.append(text[i])
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i : i + 2])
                    i += 2
                    continue
                out.append(text[i])
                i += 1
            if i < n:
                out.append(text[i])
                i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def unordered_decl_names(text):
    """Names declared in `text` with an unordered_map/unordered_set type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        # Walk the template argument list to its matching '>'.
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        ident = IDENT_AFTER_TYPE_RE.match(text, i)
        if ident:
            names.add(ident.group(1))
    return names


class Allowlist:
    """Audited exceptions: `path-glob<TAB/space>rule<TAB/space>substring`."""

    def __init__(self, path):
        self.entries = []
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as f:
            for raw in f:
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split(None, 2)
                if len(parts) < 2:
                    continue
                glob, rule = parts[0], parts[1]
                sub = parts[2] if len(parts) > 2 else "*"
                self.entries.append((glob, rule, sub))

    def allows(self, rel, rule, line_text):
        for glob, arule, sub in self.entries:
            if arule != rule and arule != "*":
                continue
            if not fnmatch.fnmatch(rel, glob):
                continue
            if sub == "*" or sub in line_text:
                return True
        return False


class Linter:
    def __init__(self, root):
        self.root = root
        self.src = os.path.join(root, "src")
        self.allow = Allowlist(os.path.join(root, "scripts",
                                            "lint_allowlist.txt"))
        self.findings = []
        self._decl_cache = {}
        self.catalog = self._load_metric_catalog()

    def _load_metric_catalog(self):
        """String literals in the checked-in metric-name catalog header."""
        path = os.path.join(self.root, METRIC_CATALOG_HEADER)
        try:
            with open(path, encoding="utf-8") as f:
                text = strip_comments(f.read())
        except OSError:
            return None
        return set(re.findall(r'"([^"]+)"', text))

    def rel(self, path):
        return os.path.relpath(path, self.root).replace(os.sep, "/")

    def report(self, path, lineno, rule, msg, line_text=""):
        rel = self.rel(path)
        if self.allow.allows(rel, rule, line_text):
            return
        self.findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    def source_files(self):
        for dirpath, _, files in os.walk(self.src):
            for f in sorted(files):
                if f.endswith(SRC_EXTS):
                    yield os.path.join(dirpath, f)

    def decls_of(self, path):
        if path not in self._decl_cache:
            try:
                with open(path, encoding="utf-8") as f:
                    text = strip_comments(f.read())
            except OSError:
                text = ""
            self._decl_cache[path] = unordered_decl_names(text)
        return self._decl_cache[path]

    def include_scope(self, path, text):
        """Unordered names visible to `path`: its own + direct includes'."""
        names = set(unordered_decl_names(text))
        for line in text.splitlines():
            m = INCLUDE_RE.match(line)
            if m and m.group(1) == '"':
                target = os.path.join(self.src, m.group(2))
                if os.path.exists(target):
                    names |= self.decls_of(target)
        return names

    def lint_file(self, path):
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments(raw)
        lines = text.splitlines()
        rel = self.rel(path)
        is_header = path.endswith(".h")

        unordered = self.include_scope(path, text)

        if is_header and "#pragma once" not in raw:
            self.report(path, 1, "pragma-once",
                        "header lacks '#pragma once'")

        self._lint_includes(path, rel, lines, text)
        self._lint_metric_names(path, text)

        for i, line in enumerate(lines, 1):
            self._lint_line(path, i, line, unordered)

    def _lint_metric_names(self, path, text):
        """Registry factory calls must use catalogued names (or suffixes)."""
        if self.catalog is None:
            if self.rel(path) != METRIC_CATALOG_HEADER:
                self.report(path, 1, "metric-name",
                            f"{METRIC_CATALOG_HEADER} is missing; the metric "
                            "name catalog is a checked-in contract")
            return
        if self.rel(path) == METRIC_CATALOG_HEADER:
            return
        for m in METRIC_CALL_RE.finditer(text):
            lineno = text.count("\n", 0, m.start()) + 1
            name, suffix = m.group("name"), m.group("suffix")
            if name is not None and name not in self.catalog:
                self.report(path, lineno, "metric-name",
                            f'metric name "{name}" is not in '
                            f"{METRIC_CATALOG_HEADER}", m.group(0))
            elif suffix is not None and not any(
                    c.endswith(suffix) for c in self.catalog):
                self.report(path, lineno, "metric-name",
                            f'no catalogued metric name ends in "{suffix}" '
                            f"({METRIC_CATALOG_HEADER})", m.group(0))

    def _lint_includes(self, path, rel, lines, text):
        layer = rel.split("/")[1] if rel.count("/") >= 2 else ""
        allowed = LAYERS.get(layer)
        for i, line in enumerate(lines, 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            kind, inc = m.groups()
            if kind == '"':
                if inc.startswith(".") or "/" not in inc:
                    self.report(path, i, "include-path",
                                f'"{inc}" must be root-relative '
                                '(e.g. "tuple/index.h")', line)
                elif not os.path.exists(os.path.join(self.src, inc)):
                    self.report(path, i, "include-path",
                                f'"{inc}" does not resolve under src/', line)
                if allowed and "/" in inc and not inc.startswith(allowed):
                    self.report(path, i, "layering",
                                f"src/{layer} may only include "
                                f"{{{', '.join(allowed)}}}, got \"{inc}\"",
                                line)
                if (inc == SIM_NETWORK_HEADER
                        and not rel.startswith("src/sim/")
                        and rel != SIM_NETWORK_ADAPTER):
                    self.report(path, i, "sim-network",
                                f'"{SIM_NETWORK_HEADER}" may only be '
                                "included by src/sim/ and "
                                f"{SIM_NETWORK_ADAPTER}; go through "
                                "transport::Transport", line)
            else:
                if (inc in CONCURRENCY_HEADERS
                        and not rel.startswith("src/transport/")):
                    self.report(path, i, "concurrency",
                                f"<{inc}> outside src/transport/: protocol "
                                "code is single-strand; threads and locks "
                                "live in the transport backends", line)
                token = UNUSED_INCLUDE_TOKENS.get(inc)
                if token:
                    body = "\n".join(l for j, l in enumerate(lines, 1)
                                     if j != i)
                    if not re.search(token, body):
                        self.report(path, i, "unused-include",
                                    f"<{inc}> included but never used", line)

    def _lint_line(self, path, lineno, line, unordered):
        m = WALL_CLOCK_RE.search(line)
        if m and not self.rel(path).startswith("src/transport/"):
            self.report(path, lineno, "wall-clock",
                        f"wall-clock source '{m.group(0).strip()}' in "
                        "library code (use transport::Clock)", line)
        m = RAW_RANDOM_RE.search(line)
        if m:
            self.report(path, lineno, "raw-random",
                        f"raw randomness '{m.group(0).strip()}' (use "
                        "sim::Rng)", line)
        m = STDIO_RE.search(line)
        if m:
            self.report(path, lineno, "stdio",
                        f"stdio output '{m.group(0).strip()}' in src/", line)

        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(1).lstrip("*")
            if expr.endswith(")"):
                continue  # function-call result, not a member walk
            tail = re.split(r"\.|->", expr)[-1]
            if tail in unordered:
                self.report(path, lineno, "unordered-iter",
                            f"range-for over unordered container '{expr}' "
                            "(iterate a sorted copy or an ordered index)",
                            line)
        for m in BEGIN_DEREF_RE.finditer(line):
            if m.group(1) in unordered:
                self.report(path, lineno, "unordered-iter",
                            f"*{m.group(1)}.begin() on unordered container "
                            "is a nondeterministic pick", line)

    def run(self):
        for path in self.source_files():
            self.lint_file(path)
        self._lint_bench_metric_names()
        return self.findings

    def _lint_bench_metric_names(self):
        """bench/ records into the same registry; names share the catalog
        contract (the other rules stay src/-only: benches legitimately use
        stdio, wall clocks, google-benchmark internals)."""
        bench = os.path.join(self.root, "bench")
        if not os.path.isdir(bench):
            return
        for dirpath, _, files in os.walk(bench):
            for f in sorted(files):
                if not f.endswith(SRC_EXTS):
                    continue
                path = os.path.join(dirpath, f)
                try:
                    with open(path, encoding="utf-8") as fh:
                        text = strip_comments(fh.read())
                except OSError:
                    continue
                self._lint_metric_names(path, text)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint_tiamat: no src/ under {root}", file=sys.stderr)
        return 2

    findings = Linter(root).run()
    for f in findings:
        print(f)
    if findings:
        print(f"lint_tiamat: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_tiamat: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
