#!/usr/bin/env bash
# Full local gate: build + test the release tree (the tier-1 configuration),
# then the asan/ubsan tree. Usage: scripts/check.sh [--release-only]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

run_preset() {
  local preset=$1
  echo "== ${preset}: configure =="
  cmake --preset "${preset}"
  echo "== ${preset}: build =="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "== ${preset}: test =="
  ctest --preset "${preset}" -j "${jobs}"
}

run_preset release
if [[ "${1:-}" != "--release-only" ]]; then
  run_preset asan
fi

echo "All checks passed."
