#!/usr/bin/env bash
# Full local gate: lint, then build + test the release tree (the tier-1
# configuration), the asan/ubsan tree, the invariant-audit tree, the
# transport suites under ThreadSanitizer, and the instrumentation-overhead
# gate (release vs TIAMAT_OBS_OFF); then the bench smokes and a bounded
# chaos-fuzz pass (scripts/fuzz_smoke.sh).
# Usage: scripts/check.sh [--release-only]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== lint =="
scripts/lint.sh

run_preset() {
  local preset=$1
  echo "== ${preset}: configure =="
  cmake --preset "${preset}"
  echo "== ${preset}: build =="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "== ${preset}: test =="
  ctest --preset "${preset}" -j "${jobs}"
}

run_preset release
if [[ "${1:-}" != "--release-only" ]]; then
  run_preset asan
  # UB is a hard failure here (-fno-sanitize-recover=all), unlike the asan
  # tree's recover-and-report UBSan: the same suite, but any UB aborts.
  run_preset ubsan
  # Thread Safety Analysis: compile-time proof of the transport locking
  # discipline (DESIGN.md §11). clang-only — gated on availability like
  # clang-tidy in lint.sh; CI installs clang and always runs it.
  if command -v clang++ >/dev/null 2>&1; then
    echo "== tsa: configure =="
    cmake --preset tsa
    echo "== tsa: build (-Werror=thread-safety) =="
    cmake --build --preset tsa -j "${jobs}"
  else
    echo "== tsa: clang++ not installed; skipping thread-safety build =="
  fi
  # Same suite again with the invariant checkpoints compiled in: every
  # mutation re-verifies the engine's structural invariants, and the
  # corruption-trap tests (test_audit) prove the auditor actually fires.
  run_preset audit
  # The loopback transport backend is the tree's one threaded component
  # (the lint `concurrency` rule keeps it that way); run the transport
  # conformance + loopback differential suites under ThreadSanitizer.
  # Only test_transport is built — the rest of the tree is single-strand
  # and already covered by the presets above.
  echo "== tsan: configure =="
  cmake --preset tsan
  echo "== tsan: build (test_transport) =="
  cmake --build --preset tsan --target test_transport -j "${jobs}"
  echo "== tsan: transport tests =="
  ctest --preset tsan -R Transport -j "${jobs}"
  # Instrumentation-overhead gate (DESIGN.md §13): bench the release tree
  # against an identical tree with TIAMAT_OBS_OFF on the loopback hot path.
  # Soft by default (wall-clock noise); OBS_OVERHEAD_HARD=1 enforces.
  scripts/obs_overhead_gate.sh
fi

# Matching-engine bench smoke: a sub-second run whose --json export is
# self-validated by the bench binary (parse + registry reload); a broken
# exporter or a crashing engine fails the gate here, not in a later PR's
# perf diff.
echo "== bench_match: smoke =="
smoke_json=$(mktemp /tmp/BENCH_match_smoke.XXXXXX.json)
flood_json=$(mktemp /tmp/BENCH_flooding_fresh.XXXXXX.json)
series_a=$(mktemp /tmp/SERIES_churn_a.XXXXXX.json)
series_b=$(mktemp /tmp/SERIES_churn_b.XXXXXX.json)
trap 'rm -f "${smoke_json}" "${flood_json}" "${series_a}" "${series_b}"' EXIT
build/bench/bench_match --benchmark_min_time=0.01 \
  --benchmark_filter='BM_(KeyedFindFirst|UnkeyedFindFirst|WaiterOffer)' \
  --json="${smoke_json}" >/dev/null
grep -q '"engine.bucket_probes"' "${smoke_json}" || {
  echo "bench_match smoke: engine counters missing from ${smoke_json}" >&2
  exit 1
}
# Engine-shape gate: counters accumulate across google-benchmark calibration
# reruns (soft), but per-lookup ratios are workload-determined — drift there
# is an engine behaviour change.
python3 scripts/bench_compare.py BENCH_match.json "${smoke_json}" \
  --soft 'counter:*' --gauge-tol 10 --quiet

# Perf-regression gate: bench_flooding runs entirely in virtual time with
# fixed seeds (Iterations(1)), so every exported counter and histogram
# bucket is deterministic — any drift against the committed baseline is a
# protocol behaviour change and hard-fails. Wall-clock noise never enters
# the comparison (timing lives in google-benchmark output, not the export).
echo "== bench_flooding: perf-regression gate =="
build/bench/bench_flooding --json="${flood_json}" >/dev/null
python3 scripts/bench_compare.py BENCH_flooding.json "${flood_json}"

# Telemetry determinism smoke: the same seeded churn config run twice with
# --series must emit byte-identical time-series documents (the recorder is
# driven purely by the sim clock and ordered registry walks), and the
# inspector must be able to render them.
echo "== bench_churn: telemetry series determinism =="
build/bench/bench_churn --benchmark_filter='BM_Churn/12/0/1' \
  --series="${series_a}" >/dev/null
build/bench/bench_churn --benchmark_filter='BM_Churn/12/0/1' \
  --series="${series_b}" >/dev/null
cmp "${series_a}" "${series_b}" || {
  echo "telemetry series not byte-identical across identical seeded runs" >&2
  exit 1
}
build/src/apps/tiamat-inspect series "${series_a}" >/dev/null

# Bounded chaos-fuzz pass (DESIGN.md §12): regression corpus, determinism,
# and a handful of fresh schedules against the release binary; with the
# audit tree built, also the inject->artifact->replay death path. A trap
# leaves its minimized repro_<seed>.json in FUZZ_OUT_DIR.
echo "== tiamat-fuzz: bounded chaos pass =="
audit_fuzz=""
if [[ "${1:-}" != "--release-only" ]]; then
  audit_fuzz="build-audit/src/apps/tiamat-fuzz"
fi
scripts/fuzz_smoke.sh build/src/apps/tiamat-fuzz ${audit_fuzz}

echo "All checks passed."
